#include "stats/streaming.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"
#include "stats/special.h"

namespace cloudrepro::stats {

void StreamingMoments::merge(const StreamingMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  // Chan et al.: M2 = M2a + M2b + delta^2 * na * nb / (na + nb),
  // delta expressed via the means to avoid overflow on large sums.
  const double delta = sum_ / na - other.sum_ / nb;
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  sum_ += other.sum_;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  cached_ = 0;
}

double StreamingMoments::variance() const noexcept {
  if (!is_cached(kVariance)) {
    cached_variance_ = n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
    cached_ |= kVariance;
  }
  return cached_variance_;
}

double StreamingMoments::stddev() const noexcept {
  if (!is_cached(kStddev)) {
    cached_stddev_ = std::sqrt(variance());
    cached_ |= kStddev;
  }
  return cached_stddev_;
}

double StreamingMoments::coefficient_of_variation() const noexcept {
  if (!is_cached(kCov)) {
    const double m = mean();
    cached_cov_ = m == 0.0 ? 0.0 : stddev() / m;
    cached_ |= kCov;
  }
  return cached_cov_;
}

double StreamingMoments::standard_error() const noexcept {
  if (!is_cached(kStderr)) {
    cached_stderr_ =
        n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
    cached_ |= kStderr;
  }
  return cached_stderr_;
}

TestResult welch_t_test(const StreamingMoments& a, const StreamingMoments& b) {
  TestResult result{};
  if (a.count() < 2 || b.count() < 2) return result;
  const double na = static_cast<double>(a.count());
  const double nb = static_cast<double>(b.count());
  const double va = a.variance() / na;
  const double vb = b.variance() / nb;
  const double se2 = va + vb;
  if (se2 <= 0.0) {
    // Both samples constant: identical means -> p = 1, else certain reject.
    result.p_value = a.mean() == b.mean() ? 1.0 : 0.0;
    result.statistic = a.mean() == b.mean() ? 0.0 : HUGE_VAL;
    return result;
  }
  result.statistic = (a.mean() - b.mean()) / std::sqrt(se2);
  // Welch–Satterthwaite degrees of freedom.
  const double dof =
      se2 * se2 / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  const double t = std::fabs(result.statistic);
  result.p_value = 2.0 * (1.0 - student_t_cdf(t, dof));
  return result;
}

TestResult z_test(const StreamingMoments& a, const StreamingMoments& b) {
  TestResult result{};
  if (a.count() < 2 || b.count() < 2) return result;
  const double se2 = a.variance() / static_cast<double>(a.count()) +
                     b.variance() / static_cast<double>(b.count());
  if (se2 <= 0.0) {
    result.p_value = a.mean() == b.mean() ? 1.0 : 0.0;
    result.statistic = a.mean() == b.mean() ? 0.0 : HUGE_VAL;
    return result;
  }
  result.statistic = (a.mean() - b.mean()) / std::sqrt(se2);
  result.p_value = 2.0 * (1.0 - normal_cdf(std::fabs(result.statistic)));
  return result;
}

P2Quantile::P2Quantile(double q) : q_{q} {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument{"P2Quantile: q must be in (0, 1)"};
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::add(double x) noexcept {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }

  int k;  // Cell the new observation falls into.
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++n_;

  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P^2) interpolation.
      const double np = positions_[i] + s;
      const double q_prev = heights_[i - 1];
      const double q_cur = heights_[i];
      const double q_next = heights_[i + 1];
      const double n_prev = positions_[i - 1];
      const double n_cur = positions_[i];
      const double n_next = positions_[i + 1];
      double candidate =
          q_cur + s / (n_next - n_prev) *
                      ((n_cur - n_prev + s) * (q_next - q_cur) /
                           (n_next - n_cur) +
                       (n_next - n_cur - s) * (q_cur - q_prev) /
                           (n_cur - n_prev));
      if (candidate <= q_prev || candidate >= q_next) {
        // Parabolic estimate left the bracket; fall back to linear.
        const double neighbor = s > 0.0 ? q_next : q_prev;
        const double neighbor_pos = s > 0.0 ? n_next : n_prev;
        candidate = q_cur + s * (neighbor - q_cur) / (neighbor_pos - n_cur);
      }
      heights_[i] = candidate;
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (n_ == 0) return 0.0;
  if (n_ >= 5) return heights_[2];
  // Small sample: exact type-7 quantile over the buffered values.
  double buf[5];
  std::copy(heights_, heights_ + n_, buf);
  std::sort(buf, buf + n_);
  const double pos = q_ * static_cast<double>(n_ - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= n_) return buf[n_ - 1];
  return buf[lo] + frac * (buf[lo + 1] - buf[lo]);
}

QuantileReservoir::QuantileReservoir(std::size_t capacity,
                                     std::uint64_t seed) noexcept
    : capacity_{capacity}, rng_state_{seed == 0 ? 0x9e3779b97f4a7c15ULL : seed} {}

std::uint64_t QuantileReservoir::next_u64() noexcept {
  // SplitMix64: deterministic, seedable, good enough for reservoir indices.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void QuantileReservoir::add(double x) {
  ++n_;
  if (capacity_ == 0 || sorted_.size() < capacity_) {
    sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), x), x);
    return;
  }
  // Algorithm R: keep the new value with probability capacity / n,
  // replacing a uniformly chosen retained slot.
  const std::uint64_t slot = next_u64() % n_;
  if (slot < capacity_) {
    sorted_.erase(sorted_.begin() + static_cast<std::ptrdiff_t>(slot));
    sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), x), x);
  }
}

void QuantileReservoir::merge(const QuantileReservoir& other) {
  if (other.sorted_.empty()) {
    n_ += other.n_;
    return;
  }
  if (capacity_ == 0 || sorted_.size() + other.sorted_.size() <= capacity_) {
    std::vector<double> merged;
    merged.reserve(sorted_.size() + other.sorted_.size());
    std::merge(sorted_.begin(), sorted_.end(), other.sorted_.begin(),
               other.sorted_.end(), std::back_inserter(merged));
    sorted_ = std::move(merged);
    n_ += other.n_;
    return;
  }
  // Over capacity: feed the other side's retained values through the
  // replacement path, which deterministically downsamples the union.
  for (const double x : other.sorted_) add(x);
  n_ += other.n_ - other.sorted_.size();
}

double QuantileReservoir::quantile(double q) const {
  if (sorted_.empty()) {
    throw std::invalid_argument{"QuantileReservoir::quantile: empty"};
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument{"QuantileReservoir::quantile: q out of range"};
  }
  return quantile_sorted(sorted_, q);
}

ConfidenceInterval QuantileReservoir::ci(double q, double confidence) const {
  return quantile_ci_sorted(sorted_, q, confidence);
}

}  // namespace cloudrepro::stats
