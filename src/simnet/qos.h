#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "simnet/token_bucket.h"
#include "stats/rng.h"

namespace cloudrepro::simnet {

/// Egress bandwidth policy of a (virtual) node. Section 3 of the paper finds
/// that commercial clouds implement *different* such policies — a token
/// bucket on Amazon EC2, a per-core guarantee on Google Cloud, and none at
/// all (pure contention noise) on the private HPCCloud — and that these
/// policies dominate observed variability.
///
/// The fluid network advances policies with the realized send rate so that
/// stateful policies (token buckets, idle-resume penalties) evolve with the
/// traffic they shape.
class QosPolicy {
 public:
  virtual ~QosPolicy() = default;

  /// Maximum egress rate currently granted (Gbps).
  virtual double allowed_rate() const = 0;

  /// Advances internal state by `dt` seconds during which the node
  /// transmitted at `rate_gbps` (0 while idle).
  virtual void advance(double dt, double rate_gbps) = 0;

  /// Upper bound on how long allowed_rate() stays constant if the node keeps
  /// transmitting at `rate_gbps`; +infinity when the state is stable.
  virtual double time_until_change(double rate_gbps) const = 0;

  /// Restores the policy to its initial state (a "fresh VM").
  virtual void reset() = 0;

  virtual std::unique_ptr<QosPolicy> clone() const = 0;

  /// Remaining token budget in Gbit, for budget-tracked policies
  /// (token buckets); nullopt otherwise. Exposed for instrumentation only —
  /// the paper stresses that real providers do *not* expose this state
  /// (F4.4), which is precisely what breaks run independence.
  virtual std::optional<double> budget_gbit() const { return std::nullopt; }
};

/// A constant-rate cap (an unshaped dedicated link).
class FixedRateQos final : public QosPolicy {
 public:
  explicit FixedRateQos(double rate_gbps);

  double allowed_rate() const override { return rate_gbps_; }
  void advance(double, double) override {}
  double time_until_change(double) const override;
  void reset() override {}
  std::unique_ptr<QosPolicy> clone() const override;

 private:
  double rate_gbps_;
};

/// Amazon-EC2-style token-bucket shaping (Section 3.3).
class TokenBucketQos final : public QosPolicy {
 public:
  explicit TokenBucketQos(const TokenBucketConfig& config);

  double allowed_rate() const override { return bucket_.allowed_rate(); }
  void advance(double dt, double rate_gbps) override { bucket_.advance(dt, rate_gbps); }
  double time_until_change(double rate_gbps) const override {
    return bucket_.time_until_change(rate_gbps);
  }
  void reset() override { bucket_.reset(); }
  std::unique_ptr<QosPolicy> clone() const override;
  std::optional<double> budget_gbit() const override { return bucket_.budget(); }

  TokenBucket& bucket() noexcept { return bucket_; }
  const TokenBucket& bucket() const noexcept { return bucket_; }

 private:
  TokenBucket bucket_;
};

/// HPCCloud-style stochastic contention: no QoS enforcement, so the achieved
/// rate wanders with neighbour traffic. The rate is re-sampled from a
/// caller-provided distribution every `resample_interval_s` seconds
/// (the paper observes sample-to-sample changes up to 33% at 10 s
/// granularity on HPCCloud).
class StochasticQos final : public QosPolicy {
 public:
  using Sampler = std::function<double(stats::Rng&)>;

  StochasticQos(Sampler sampler, double resample_interval_s, stats::Rng rng);

  double allowed_rate() const override { return current_rate_; }
  void advance(double dt, double rate_gbps) override;
  double time_until_change(double rate_gbps) const override;
  void reset() override;
  std::unique_ptr<QosPolicy> clone() const override;

 private:
  void resample();

  Sampler sampler_;
  double resample_interval_s_;
  stats::Rng rng_;
  stats::Rng initial_rng_;
  double current_rate_;
  double time_in_interval_ = 0.0;
};

/// Google-Cloud-style per-core bandwidth QoS (Section 3.1). GCE grants
/// roughly 2 Gbps per core (capped at 16 Gbps). Long-lived streams are
/// stable; *resuming after idle* costs a heavy-tailed warm-up penalty,
/// which the paper attributes to idle flows being routed through dedicated
/// gateways in Andromeda [18] until promoted to a fast path. This yields
/// exactly Figure 5: full-speed stable at ~15.8 Gbps, 10-30 mildly degraded,
/// 5-30 with a long tail down to ~13 Gbps.
struct PerCoreQosConfig {
  int cores = 8;
  double per_core_gbps = 2.0;
  double max_gbps = 16.0;
  double jitter_fraction = 0.004;      ///< Small always-on multiplicative noise.
  double idle_threshold_s = 5.0;       ///< Idle longer than this -> cold path.
  double warmup_s = 4.0;               ///< Time to re-promote to the fast path.
  double cold_penalty_mean = 0.12;     ///< Mean fractional rate loss while cold.
  double cold_penalty_pareto_shape = 2.5;  ///< Tail heaviness of the penalty.
  double resample_interval_s = 1.0;    ///< Jitter resample cadence.
};

class PerCoreQos final : public QosPolicy {
 public:
  PerCoreQos(const PerCoreQosConfig& config, stats::Rng rng);

  double allowed_rate() const override;
  void advance(double dt, double rate_gbps) override;
  double time_until_change(double rate_gbps) const override;
  void reset() override;
  std::unique_ptr<QosPolicy> clone() const override;

  double nominal_rate() const noexcept;

 private:
  void resample_jitter();
  void draw_cold_penalty();

  PerCoreQosConfig config_;
  stats::Rng rng_;
  stats::Rng initial_rng_;
  double jitter_factor_ = 1.0;
  double idle_time_ = 0.0;
  double warmup_remaining_ = 0.0;
  double cold_penalty_ = 0.0;
  double time_in_interval_ = 0.0;
};

}  // namespace cloudrepro::simnet
