#include "simnet/fluid_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace cloudrepro::simnet {

namespace {
constexpr double kTimeEpsilon = 1e-9;
constexpr double kBytesEpsilon = 1e-12;
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
}  // namespace

NodeId FluidNetwork::add_node(std::unique_ptr<QosPolicy> egress, double ingress_cap_gbps) {
  if (!egress) throw std::invalid_argument{"FluidNetwork::add_node: null egress policy"};
  if (ingress_cap_gbps <= 0.0) {
    throw std::invalid_argument{"FluidNetwork::add_node: ingress cap must be positive"};
  }
  nodes_.push_back(Node{std::move(egress), ingress_cap_gbps});
  egress_rate_.push_back(0.0);
  ingress_rate_.push_back(0.0);
  CLOUDREPRO_OBS_STMT(if (tracer_) install_bucket_hook(nodes_.size() - 1);)
  return nodes_.size() - 1;
}

void FluidNetwork::set_observability(obs::Tracer* tracer,
                                     obs::MetricsRegistry* metrics) {
#if CLOUDREPRO_OBS
  tracer_ = tracer;
  if (metrics) {
    c_allocations_ = &metrics->counter("simnet.allocations");
    c_steps_ = &metrics->counter("simnet.steps");
    c_flows_started_ = &metrics->counter("simnet.flows_started");
    c_flows_completed_ = &metrics->counter("simnet.flows_completed");
  } else {
    c_allocations_ = c_steps_ = c_flows_started_ = c_flows_completed_ = nullptr;
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    install_bucket_hook(id);
  }
#else
  (void)tracer;
  (void)metrics;
#endif
}

void FluidNetwork::install_bucket_hook(NodeId id) {
  auto* tb = dynamic_cast<TokenBucketQos*>(nodes_[id].egress.get());
  if (!tb) return;
  if (!tracer_) {
    tb->bucket().set_transition_hook(nullptr, nullptr);
    return;
  }
  bucket_hooks_.push_back(std::make_unique<BucketHookCtx>(BucketHookCtx{this, id}));
  tb->bucket().set_transition_hook(&FluidNetwork::bucket_transition_hook,
                                   bucket_hooks_.back().get());
}

void FluidNetwork::bucket_transition_hook(void* ctx, bool to_low,
                                          double budget_gbit) {
  const auto* c = static_cast<BucketHookCtx*>(ctx);
  FluidNetwork* net = c->net;
  if (!net->tracer_) return;
  net->tracer_->instant(net->step_end_, "simnet",
                        to_low ? "bucket_depleted" : "bucket_recovered",
                        {"node", static_cast<double>(c->node)},
                        {"budget_gbit", budget_gbit},
                        static_cast<std::uint32_t>(c->node), 1);
}

FlowId FluidNetwork::start_flow(NodeId src, NodeId dst, double gbit) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::out_of_range{"FluidNetwork::start_flow: unknown node"};
  }
  if (nodes_[src].failed || nodes_[dst].failed) {
    throw std::invalid_argument{"FluidNetwork::start_flow: node has failed"};
  }
  if (src == dst) {
    throw std::invalid_argument{"FluidNetwork::start_flow: src == dst (local I/O is not shaped)"};
  }
  if (gbit <= 0.0) throw std::invalid_argument{"FluidNetwork::start_flow: size must be positive"};
  Flow f;
  f.src = src;
  f.dst = dst;
  f.remaining_gbit = gbit;
  f.active = true;
  f.start_time = now_;
  flows_.push_back(f);
  active_slot_.push_back(active_ids_.size());
  active_ids_.push_back(flows_.size() - 1);
  CLOUDREPRO_OBS_STMT(
      if (c_flows_started_) c_flows_started_->add();
      if (tracer_) {
        tracer_->instant(now_, "simnet", "flow_start",
                         {"flow", static_cast<double>(flows_.size() - 1)},
                         {"gbit", gbit}, static_cast<std::uint32_t>(src), 1);
      })
  return flows_.size() - 1;
}

void FluidNetwork::stop_flow(FlowId id) {
  Flow& f = flows_.at(id);
  if (!f.active) return;
  deactivate(id);  // Subtracts the still-current allocation from the caches.
  f.active = false;
  f.end_time = now_;
  f.rate_gbps = 0.0;
}

void FluidNetwork::deactivate(FlowId id) {
  const std::size_t slot = active_slot_[id];
  if (slot == kNoSlot) return;
  remove_active_at(slot);
}

void FluidNetwork::remove_active_at(std::size_t slot) {
  const FlowId id = active_ids_[slot];
  const Flow& f = flows_[id];
  // Every deactivation path (completion, stop_flow, fail_node) funnels
  // through here, so this is the single flow-end observation point.
  CLOUDREPRO_OBS_STMT(
      if (c_flows_completed_) c_flows_completed_->add();
      if (tracer_) {
        tracer_->instant(now_, "simnet", "flow_end",
                         {"flow", static_cast<double>(id)},
                         {"transferred_gbit", f.transferred_gbit},
                         static_cast<std::uint32_t>(f.src), 1);
      })
  egress_rate_[f.src] -= f.rate_gbps;
  ingress_rate_[f.dst] -= f.rate_gbps;
  active_slot_[id] = kNoSlot;
  active_ids_[slot] = active_ids_.back();
  active_ids_.pop_back();
  if (slot < active_ids_.size()) active_slot_[active_ids_[slot]] = slot;
}

void FluidNetwork::assert_rate_caches() const {
#ifndef NDEBUG
  std::vector<double> egress(nodes_.size(), 0.0);
  std::vector<double> ingress(nodes_.size(), 0.0);
  for (const FlowId fid : active_ids_) {
    const Flow& f = flows_[fid];
    egress[f.src] += f.rate_gbps;
    ingress[f.dst] += f.rate_gbps;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // Tolerance: decremental updates between allocations reassociate the
    // floating-point sum, so exact equality only holds right after
    // allocate_rates.
    const double tol = 1e-9 * std::max(1.0, std::fabs(egress[i]) + std::fabs(ingress[i]));
    assert(std::fabs(egress_rate_[i] - egress[i]) <= tol &&
           "FluidNetwork: cached egress rate diverged from active set");
    assert(std::fabs(ingress_rate_[i] - ingress[i]) <= tol &&
           "FluidNetwork: cached ingress rate diverged from active set");
  }
#endif
}

std::size_t FluidNetwork::active_flow_count() const noexcept {
  return active_ids_.size();
}

void FluidNetwork::set_node_rate_factor(NodeId id, double factor) {
  if (factor <= 0.0 || factor > 1.0) {
    throw std::invalid_argument{
        "FluidNetwork::set_node_rate_factor: factor must be in (0, 1]"};
  }
  nodes_.at(id).rate_factor = factor;
}

void FluidNetwork::set_node_loss(NodeId id, double loss) {
  if (loss < 0.0 || loss >= 1.0) {
    throw std::invalid_argument{
        "FluidNetwork::set_node_loss: loss must be in [0, 1)"};
  }
  nodes_.at(id).loss_fraction = loss;
}

void FluidNetwork::fail_node(NodeId id) {
  Node& node = nodes_.at(id);
  if (node.failed) return;
  node.failed = true;
  // Reverse order so a swap-erase only moves an already-examined id.
  for (std::size_t i = active_ids_.size(); i-- > 0;) {
    const FlowId fid = active_ids_[i];
    Flow& f = flows_[fid];
    if (f.src == id || f.dst == id) {
      remove_active_at(i);
      f.active = false;
      f.end_time = now_;
      f.rate_gbps = 0.0;
    }
  }
}

double FluidNetwork::node_allowed_rate(NodeId id) const {
  const Node& node = nodes_.at(id);
  if (node.failed) return 0.0;
  return node.egress->allowed_rate() * node.rate_factor;
}

double FluidNetwork::node_egress_rate(NodeId id) const {
  assert_rate_caches();
  return egress_rate_.at(id);
}

double FluidNetwork::node_ingress_rate(NodeId id) const {
  assert_rate_caches();
  return ingress_rate_.at(id);
}

void FluidNetwork::allocate_rates() {
  // Progressive filling: raise all unfrozen flow rates in lockstep; freeze
  // the flows crossing each constraint as it saturates.
  const std::size_t n_nodes = nodes_.size();
  std::vector<double> egress_left(n_nodes);
  std::vector<double> ingress_left(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    egress_left[i] = nodes_[i].egress->allowed_rate() * nodes_[i].rate_factor;
    ingress_left[i] = nodes_[i].ingress_cap_gbps * nodes_[i].rate_factor;
  }

  std::vector<FlowId> unfrozen;
  unfrozen.reserve(active_ids_.size());
  for (const FlowId id : active_ids_) {
    flows_[id].rate_gbps = 0.0;
    unfrozen.push_back(id);
  }

  while (!unfrozen.empty()) {
    std::vector<std::size_t> egress_users(n_nodes, 0);
    std::vector<std::size_t> ingress_users(n_nodes, 0);
    for (const FlowId id : unfrozen) {
      ++egress_users[flows_[id].src];
      ++ingress_users[flows_[id].dst];
    }

    double delta = kInfiniteBytes;
    for (std::size_t i = 0; i < n_nodes; ++i) {
      if (egress_users[i] > 0 && std::isfinite(egress_left[i])) {
        delta = std::min(delta, egress_left[i] / static_cast<double>(egress_users[i]));
      }
      if (ingress_users[i] > 0 && std::isfinite(ingress_left[i])) {
        delta = std::min(delta, ingress_left[i] / static_cast<double>(ingress_users[i]));
      }
    }
    if (!std::isfinite(delta)) {
      // No finite constraint applies — should not happen because every node
      // has an egress policy; guard against a runaway loop regardless.
      throw std::runtime_error{"FluidNetwork::allocate_rates: unconstrained flow set"};
    }

    for (const FlowId id : unfrozen) {
      flows_[id].rate_gbps += delta;
    }
    for (std::size_t i = 0; i < n_nodes; ++i) {
      egress_left[i] -= delta * static_cast<double>(egress_users[i]);
      ingress_left[i] -= delta * static_cast<double>(ingress_users[i]);
    }

    std::vector<FlowId> still_unfrozen;
    still_unfrozen.reserve(unfrozen.size());
    for (const FlowId id : unfrozen) {
      const bool saturated = egress_left[flows_[id].src] <= kBytesEpsilon ||
                             ingress_left[flows_[id].dst] <= kBytesEpsilon;
      if (!saturated) still_unfrozen.push_back(id);
    }
    if (still_unfrozen.size() == unfrozen.size()) {
      // Numerical stall: freeze everything crossing the tightest constraint.
      break;
    }
    unfrozen.swap(still_unfrozen);
  }

  // Rebuild the per-node aggregate caches. Iterating active_ids_ in order
  // accumulates each node's sum in the same order the removed per-query
  // scan did, so cached values are bit-identical to a rescan here.
  std::fill(egress_rate_.begin(), egress_rate_.end(), 0.0);
  std::fill(ingress_rate_.begin(), ingress_rate_.end(), 0.0);
  for (const FlowId id : active_ids_) {
    const Flow& f = flows_[id];
    egress_rate_[f.src] += f.rate_gbps;
    ingress_rate_[f.dst] += f.rate_gbps;
  }

  CLOUDREPRO_OBS_STMT(
      if (c_allocations_) c_allocations_->add();
      if (tracer_) {
        tracer_->instant(now_, "simnet", "reallocate",
                         {"active_flows", static_cast<double>(active_ids_.size())},
                         {}, 0, 1);
      })
}

void FluidNetwork::step_once(double t_bound) {
  allocate_rates();

  double dt = t_bound - now_;
  for (const FlowId fid : active_ids_) {
    const Flow& f = flows_[fid];
    // Only goodput completes the flow: under a loss burst a fraction of the
    // wire rate is retransmitted bytes that make no forward progress.
    const double goodput = f.rate_gbps * (1.0 - nodes_[f.src].loss_fraction);
    if (std::isfinite(f.remaining_gbit) && goodput > 0.0) {
      dt = std::min(dt, f.remaining_gbit / goodput);
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    dt = std::min(dt, nodes_[i].egress->time_until_change(node_egress_rate(i)));
  }
  dt = std::max(dt, kTimeEpsilon);
  CLOUDREPRO_OBS_STMT(
      step_end_ = now_ + dt;
      if (c_steps_) c_steps_->add();)

  // Advance QoS state with the realized per-node *wire* rates (retransmitted
  // bytes drain the token budget like any others), then move the data.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].egress->advance(dt, node_egress_rate(i));
  }
  for (const FlowId fid : active_ids_) {
    Flow& f = flows_[fid];
    const double loss = nodes_[f.src].loss_fraction;
    const double moved = f.rate_gbps * (1.0 - loss) * dt;
    nodes_[f.src].retransmitted_gbit += f.rate_gbps * loss * dt;
    f.transferred_gbit += moved;
    if (std::isfinite(f.remaining_gbit)) {
      f.remaining_gbit -= moved;
    }
  }
  now_ += dt;

  if (observer_) observer_(*this, now_, dt);

  for (std::size_t i = active_ids_.size(); i-- > 0;) {
    const FlowId fid = active_ids_[i];
    Flow& f = flows_[fid];
    if (std::isfinite(f.remaining_gbit) && f.remaining_gbit <= kBytesEpsilon) {
      remove_active_at(i);
      f.remaining_gbit = 0.0;
      f.active = false;
      f.end_time = now_;
      f.rate_gbps = 0.0;
    }
  }
}

void FluidNetwork::run_until(double t_end) {
  while (now_ < t_end - kTimeEpsilon) {
    step_once(t_end);
  }
  now_ = t_end;
}

bool FluidNetwork::run_until_flows_complete(double deadline) {
  const auto finite_flows_pending = [this] {
    for (const FlowId fid : active_ids_) {
      if (std::isfinite(flows_[fid].remaining_gbit)) return true;
    }
    return false;
  };
  // Event-exact stepping: time stops advancing the moment the last finite
  // flow completes (a stage barrier must not inherit dead time).
  while (finite_flows_pending() && now_ < deadline - kTimeEpsilon) {
    step_once(deadline);
  }
  return !finite_flows_pending();
}

}  // namespace cloudrepro::simnet
