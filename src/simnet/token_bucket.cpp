#include "simnet/token_bucket.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"
#include "simnet/units.h"

namespace cloudrepro::simnet {

TokenBucket::TokenBucket(const TokenBucketConfig& config)
    : config_{config},
      budget_{config.initial_gbit},
      low_mode_{config.initial_gbit <= 0.0} {
  if (config.capacity_gbit < 0.0 || config.initial_gbit < 0.0) {
    throw std::invalid_argument{"TokenBucket: capacity and initial budget must be non-negative"};
  }
  if (config.initial_gbit > config.capacity_gbit) {
    throw std::invalid_argument{"TokenBucket: initial budget exceeds capacity"};
  }
  if (config.high_rate_gbps <= 0.0 || config.low_rate_gbps <= 0.0) {
    throw std::invalid_argument{"TokenBucket: rates must be positive"};
  }
  if (config.low_rate_gbps > config.high_rate_gbps) {
    throw std::invalid_argument{"TokenBucket: low rate exceeds high rate"};
  }
  if (config.replenish_gbps < 0.0) {
    throw std::invalid_argument{"TokenBucket: replenish rate must be non-negative"};
  }
  if (config.recover_threshold_gbit < 0.0 ||
      config.recover_threshold_gbit > config.capacity_gbit) {
    throw std::invalid_argument{"TokenBucket: recovery threshold must lie within [0, capacity]"};
  }
}

double TokenBucket::allowed_rate() const noexcept {
  return low_mode_ ? config_.low_rate_gbps : config_.high_rate_gbps;
}

void TokenBucket::advance(double dt, double rate_gbps) noexcept {
  if (dt <= 0.0) return;
  const double rate = std::clamp(rate_gbps, 0.0, allowed_rate());
  const double net_drain = rate - config_.replenish_gbps;
  budget_ = std::clamp(budget_ - net_drain * dt, 0.0, config_.capacity_gbit);
  if (!low_mode_ && budget_ <= 0.0) {
    low_mode_ = true;
    CLOUDREPRO_OBS_STMT(notify_transition();)
  } else if (low_mode_ && budget_ >= config_.recover_threshold_gbit) {
    low_mode_ = false;
    CLOUDREPRO_OBS_STMT(notify_transition();)
  }
}

double TokenBucket::time_until_change(double rate_gbps) const noexcept {
  const double rate = std::clamp(rate_gbps, 0.0, allowed_rate());
  const double net_gain = config_.replenish_gbps - rate;
  if (!low_mode_ && net_gain < 0.0) {
    return budget_ / -net_gain;  // Time until depletion -> drop to low rate.
  }
  if (low_mode_ && net_gain > 0.0) {
    // Time until the budget refills past the recovery threshold.
    return (config_.recover_threshold_gbit - budget_) / net_gain;
  }
  return kInfiniteTime;
}

double TokenBucket::time_to_full_refill() const noexcept {
  if (config_.replenish_gbps <= 0.0) return kInfiniteTime;
  return (config_.capacity_gbit - budget_) / config_.replenish_gbps;
}

void TokenBucket::reset() noexcept {
  budget_ = config_.initial_gbit;
  low_mode_ = budget_ <= 0.0;
}

void TokenBucket::set_budget(double gbit) noexcept {
  const bool was_low = low_mode_;
  budget_ = std::clamp(gbit, 0.0, config_.capacity_gbit);
  low_mode_ = budget_ < config_.recover_threshold_gbit ? (budget_ <= 0.0 || low_mode_)
                                                       : false;
  if (low_mode_ != was_low) {
    CLOUDREPRO_OBS_STMT(notify_transition();)
  }
}

}  // namespace cloudrepro::simnet
