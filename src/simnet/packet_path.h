#pragma once

#include <cstddef>
#include <vector>

#include "simnet/qos.h"
#include "stats/rng.h"

namespace cloudrepro::simnet {

/// Virtual-NIC model (Section 3.3, "Virtual NIC Implementations").
///
/// EC2 and GCE implement the same function — fewer, larger packets on the
/// virtual NIC — via different mechanisms with observably different
/// behaviour:
///  - EC2 advertises a 9000-byte jumbo MTU; a "packet" tops out at 9 KB.
///  - GCE advertises a 1500-byte MTU but enables TSO, so a single "packet"
///    handed to the virtual NIC can be as large as 64 KB.
/// In Linux, the size of the "packets" passed to the virtual NIC tends to
/// equal the application's write() size up to that cap, which makes latency
/// and retransmission behaviour *application dependent* (Figure 12).
struct VnicConfig {
  double mtu_bytes = 9000.0;      ///< Largest on-wire "packet" without TSO.
  double tso_max_bytes = 0.0;     ///< TSO cap; 0 disables TSO (segment at MTU).
  std::size_t queue_descriptors = 64;   ///< Device-queue depth in packets.
  double queue_byte_capacity = 4.0e6;   ///< Bottom-half buffer space in bytes.
  double base_rtt_s = 5.0e-5;     ///< Unloaded round-trip latency.
  double rtt_jitter_sigma = 0.35; ///< Lognormal sigma of multiplicative jitter.
  double loss_pressure_coefficient = 0.007;  ///< Scales byte-pressure loss.
  double retransmit_penalty_mean_s = 0.25;   ///< Mean added delay per loss (RTO).
  /// Fixed per-segment processing cost (virtualization exit + interrupt).
  /// This is what makes small write() sizes unable to fill the link —
  /// the whole point of jumbo frames and TSO ("reducing overhead by sending
  /// fewer, larger packets").
  double per_segment_overhead_s = 1.5e-6;

  /// Rate the sending application can generate at (Gbps). When the shaper
  /// grants far less than this, the software queue above the device backs
  /// up — the paper's "large queues in the virtual device driver" that push
  /// EC2's RTT up by two orders of magnitude once the token bucket empties
  /// (Figure 7, bottom).
  double app_offered_gbps = 10.0;

  /// Depth of that software (qdisc) queue in packets.
  std::size_t qdisc_packets = 256;

  /// Size of a single "packet" handed to the virtual NIC for an
  /// application-level write of `write_bytes`.
  double segment_bytes(double write_bytes) const noexcept;

  /// Probability that a segment of this size is dropped in the bottom half
  /// of the virtual NIC (limited buffer space / tighter bursts; Section 3.3).
  double loss_probability(double segment_bytes) const noexcept;
};

/// One observed TCP segment: when it was sent and the application-observed
/// round-trip (send-to-ack) time — what the paper extracts from tcpdump
/// captures with wireshark.
struct PacketSample {
  double send_time_s = 0.0;
  double rtt_s = 0.0;
  bool retransmitted = false;
};

/// Result of a packet-level probe stream.
struct LatencyTrace {
  std::vector<PacketSample> packets;
  std::size_t retransmissions = 0;
  std::size_t segments_sent = 0;
  /// Mean achieved goodput per `bandwidth_sample_interval_s` (Gbps).
  std::vector<double> bandwidth_gbps;
  double bandwidth_sample_interval_s = 1.0;

  std::vector<double> rtts() const;
  double retransmission_rate() const noexcept;
};

struct PacketPathConfig {
  double write_bytes = 128.0 * 1024.0;   ///< iperf default write() size.
  double duration_s = 10.0;              ///< Paper probes with 10-s streams.
  double bandwidth_sample_interval_s = 1.0;
  /// Record at most this many RTT samples (uniformly thinned); 0 = all.
  std::size_t max_recorded_packets = 500000;
};

/// Simulates a greedy TCP stream through a virtual NIC whose drain rate is
/// set by the node's QoS policy. The policy is advanced with the realized
/// rate, so EC2-style token buckets throttle mid-stream exactly as in
/// Figure 7 (bottom).
LatencyTrace run_packet_stream(QosPolicy& qos, const VnicConfig& vnic,
                               const PacketPathConfig& config, stats::Rng& rng);

/// Canonical virtual-NIC configurations for the measured clouds.
VnicConfig ec2_vnic();
VnicConfig gce_vnic();
VnicConfig hpccloud_vnic();

}  // namespace cloudrepro::simnet
