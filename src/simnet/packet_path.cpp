#include "simnet/packet_path.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simnet/units.h"

namespace cloudrepro::simnet {

double VnicConfig::segment_bytes(double write_bytes) const noexcept {
  const double cap = tso_max_bytes > 0.0 ? tso_max_bytes : mtu_bytes;
  return std::min(write_bytes, cap);
}

double VnicConfig::loss_probability(double segment) const noexcept {
  // Byte pressure: with D descriptors of `segment` bytes each competing for
  // B bytes of bottom-half buffer, pressure above 1 produces drops. With 9 KB
  // writes the pressure is < 1 on both clouds (near-zero retransmission, as
  // the paper measured); with TSO-sized 64 KB segments it exceeds 1 on GCE
  // and yields the ~2% loss of Figure 9.
  const double queued_bytes = static_cast<double>(queue_descriptors) * segment;
  const double pressure = (queued_bytes - queue_byte_capacity) / queue_byte_capacity;
  if (pressure <= 0.0) return 1e-6;  // Residual background loss.
  return std::clamp(loss_pressure_coefficient * pressure, 0.0, 0.25);
}

std::vector<double> LatencyTrace::rtts() const {
  std::vector<double> out;
  out.reserve(packets.size());
  for (const auto& p : packets) out.push_back(p.rtt_s);
  return out;
}

double LatencyTrace::retransmission_rate() const noexcept {
  if (segments_sent == 0) return 0.0;
  return static_cast<double>(retransmissions) / static_cast<double>(segments_sent);
}

LatencyTrace run_packet_stream(QosPolicy& qos, const VnicConfig& vnic,
                               const PacketPathConfig& config, stats::Rng& rng) {
  if (config.write_bytes <= 0.0) {
    throw std::invalid_argument{"run_packet_stream: write size must be positive"};
  }
  if (config.duration_s <= 0.0) {
    throw std::invalid_argument{"run_packet_stream: duration must be positive"};
  }

  LatencyTrace trace;
  trace.bandwidth_sample_interval_s = config.bandwidth_sample_interval_s;

  const double segment = vnic.segment_bytes(config.write_bytes);
  const double loss_p = vnic.loss_probability(segment);

  // Steady-state queue occupancy in segments: descriptor-limited or
  // byte-limited, whichever binds first.
  const double device_occupancy =
      std::min(static_cast<double>(vnic.queue_descriptors),
               std::max(1.0, vnic.queue_byte_capacity / segment));
  // Once the shaper grants far less than the application offers, the
  // software qdisc above the device backs up too (bufferbloat): the
  // throttled regime of Figure 7 (bottom).
  const double qdisc_occupancy =
      std::min(static_cast<double>(vnic.qdisc_packets),
               std::max(1.0, vnic.queue_byte_capacity / segment));

  // Thinning: estimate total segments to keep recorded samples bounded.
  const double initial_rate_bytes = gbit_to_bytes(qos.allowed_rate());
  const double estimated_segments = initial_rate_bytes * config.duration_s / segment;
  std::size_t keep_every = 1;
  if (config.max_recorded_packets > 0 && estimated_segments > 0.0) {
    keep_every = std::max<std::size_t>(
        1, static_cast<std::size_t>(estimated_segments /
                                    static_cast<double>(config.max_recorded_packets)));
  }

  double t = 0.0;
  double interval_bytes = 0.0;
  double interval_elapsed = 0.0;
  std::size_t counter = 0;

  while (t < config.duration_s) {
    const double rate_gbps = qos.allowed_rate();
    const double rate_bytes = gbit_to_bytes(rate_gbps);
    const double service_s = segment / rate_bytes;

    // TCP sawtooth: instantaneous occupancy wanders across the steady-state
    // fill. In the throttled regime the queues sit near-full (bufferbloat),
    // and the deeper qdisc dominates the delay.
    const bool throttled = rate_gbps < 0.5 * vnic.app_offered_gbps;
    const double occupancy_segments = throttled ? qdisc_occupancy : device_occupancy;
    const double fill = throttled ? rng.uniform(0.70, 1.0) : rng.uniform(0.10, 1.0);
    const double queue_delay_s = occupancy_segments * fill * segment / rate_bytes;

    const double jitter = std::exp(rng.normal(0.0, vnic.rtt_jitter_sigma));
    double rtt = vnic.base_rtt_s * jitter + queue_delay_s + service_s;

    bool retransmitted = false;
    if (rng.bernoulli(loss_p)) {
      retransmitted = true;
      ++trace.retransmissions;
      rtt += rng.exponential(1.0 / vnic.retransmit_penalty_mean_s);
    }

    if (counter % keep_every == 0) {
      trace.packets.push_back(PacketSample{t, rtt, retransmitted});
    }
    ++counter;
    ++trace.segments_sent;

    // The wire carries the segment once plus once more per retransmission,
    // and every segment pays the fixed virtualization/interrupt overhead.
    const double wire_bytes = retransmitted ? 2.0 * segment : segment;
    const double dt = wire_bytes / rate_bytes + vnic.per_segment_overhead_s;
    qos.advance(dt, rate_gbps);
    t += dt;

    interval_bytes += segment;  // Goodput counts the segment once.
    interval_elapsed += dt;
    if (interval_elapsed >= config.bandwidth_sample_interval_s) {
      trace.bandwidth_gbps.push_back(bytes_to_gbit(interval_bytes) / interval_elapsed);
      interval_bytes = 0.0;
      interval_elapsed = 0.0;
    }
  }
  if (interval_elapsed > 0.1 * config.bandwidth_sample_interval_s) {
    trace.bandwidth_gbps.push_back(bytes_to_gbit(interval_bytes) / interval_elapsed);
  }
  return trace;
}

VnicConfig ec2_vnic() {
  VnicConfig v;
  v.mtu_bytes = 9000.0;
  v.tso_max_bytes = 0.0;  // Jumbo frames; no TSO needed.
  v.queue_descriptors = 64;
  v.queue_byte_capacity = 4.0e6;
  v.base_rtt_s = 5.0e-5;  // Sub-millisecond under typical conditions.
  v.rtt_jitter_sigma = 0.35;
  return v;
}

VnicConfig gce_vnic() {
  VnicConfig v;
  v.mtu_bytes = 1500.0;
  v.tso_max_bytes = 65536.0;  // TSO "packets" up to 64 KB.
  v.queue_descriptors = 64;
  v.queue_byte_capacity = 1.0e6;  // Tighter bottom-half buffers -> drops.
  v.base_rtt_s = 1.8e-3;          // Millisecond-scale base latency.
  v.rtt_jitter_sigma = 0.45;
  v.retransmit_penalty_mean_s = 0.20;
  // GCE's per-core caps are stable guarantees, not budget throttles: even
  // the 1-core 2 Gbps offering runs unthrottled, so the bufferbloat regime
  // never engages (Figure 8 shows no throttling effect).
  v.app_offered_gbps = 2.0;
  return v;
}

VnicConfig hpccloud_vnic() {
  VnicConfig v;
  v.mtu_bytes = 9000.0;
  v.tso_max_bytes = 0.0;
  v.queue_descriptors = 64;
  v.queue_byte_capacity = 8.0e6;
  v.base_rtt_s = 3.0e-5;  // FDR InfiniBand-class fabric.
  v.rtt_jitter_sigma = 0.25;
  return v;
}

}  // namespace cloudrepro::simnet
