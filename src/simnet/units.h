#pragma once

#include <limits>

namespace cloudrepro::simnet {

/// Unit conventions used throughout the simulator:
///  - time is in seconds (double),
///  - data volumes are in Gbit (double),
///  - rates are in Gbit/s (Gbps, double).
/// These match the units the paper reports (token budgets in Gbit,
/// bandwidths in Gbps/Mbps).

inline constexpr double kInfiniteTime = std::numeric_limits<double>::infinity();
inline constexpr double kInfiniteBytes = std::numeric_limits<double>::infinity();

/// Converts between unit scales.
constexpr double mbps_to_gbps(double mbps) noexcept { return mbps / 1000.0; }
constexpr double gbps_to_mbps(double gbps) noexcept { return gbps * 1000.0; }
constexpr double bytes_to_gbit(double bytes) noexcept { return bytes * 8.0 / 1e9; }
constexpr double gbit_to_bytes(double gbit) noexcept { return gbit * 1e9 / 8.0; }
constexpr double gbit_to_terabytes(double gbit) noexcept { return gbit / 8.0 / 1000.0; }

}  // namespace cloudrepro::simnet
