#pragma once

namespace cloudrepro::simnet {

/// Parameters of a token-bucket traffic shaper as the paper reverse-engineers
/// them for Amazon EC2 (Section 3.3, Figure 11):
///  - a budget of tokens (Gbit) spendable at a high rate,
///  - a low, capped rate once the budget is depleted,
///  - a replenish rate (~1 Gbit of tokens per second on c5.xlarge) such that
///    "once the token bucket empties, transmission at the capped rate is
///    sufficient to keep it from filling back up".
struct TokenBucketConfig {
  double capacity_gbit = 5400.0;   ///< Full bucket size.
  double initial_gbit = 5400.0;    ///< Budget when the VM is handed to the user.
  double high_rate_gbps = 10.0;    ///< QoS while the budget lasts.
  double low_rate_gbps = 1.0;      ///< QoS once the budget is depleted.
  double replenish_gbps = 1.0;     ///< Token refill rate.

  /// Hysteresis: once depleted, the shaper returns to the high rate only
  /// after the budget refills to this many Gbit. This models the short
  /// high/low oscillation the paper observes on the straggler node of
  /// Figure 18 ("this node oscillates between high and low bandwidths in
  /// short periods of time").
  double recover_threshold_gbit = 5.0;
};

/// Fluid-model token bucket with high/low mode hysteresis. The shaper
/// grants `high_rate` while tokens remain and `low_rate` afterwards;
/// transmitting at rate r drains the budget at (r - replenish) Gbit/s,
/// resting refills it at `replenish`.
class TokenBucket {
 public:
  /// Observer for shaper mode transitions (high->low on depletion, low->high
  /// on recovery past the hysteresis threshold). A raw function pointer plus
  /// context keeps the bucket POD-cheap to copy and the transition branch
  /// predictable; the observability layer installs hooks that stamp the
  /// transition with simulated time (the bucket itself only knows dt).
  using TransitionHook = void (*)(void* ctx, bool to_low, double budget_gbit);

  explicit TokenBucket(const TokenBucketConfig& config);

  /// Copies transfer shaper state but never the transition hook: hooks bind
  /// a bucket to its owning network's lifetime, and buckets are routinely
  /// cloned across owners (cluster <-> per-job FluidNetwork), which would
  /// otherwise leave a dangling context pointer in the clone.
  TokenBucket(const TokenBucket& other) noexcept
      : config_{other.config_}, budget_{other.budget_}, low_mode_{other.low_mode_} {}
  TokenBucket& operator=(const TokenBucket& other) noexcept {
    config_ = other.config_;
    budget_ = other.budget_;
    low_mode_ = other.low_mode_;
    return *this;  // The destination keeps its own hook.
  }

  /// Rate the shaper currently allows (Gbps).
  double allowed_rate() const noexcept;

  /// Remaining budget in Gbit.
  double budget() const noexcept { return budget_; }

  /// True while the shaper is in the capped (low-rate) mode.
  bool in_low_mode() const noexcept { return low_mode_; }

  /// Advances the bucket by `dt` seconds during which the node transmitted
  /// at `rate_gbps`. The send rate is clamped to the allowed rate: a shaped
  /// node cannot physically exceed it.
  void advance(double dt, double rate_gbps) noexcept;

  /// Time until allowed_rate() changes if the node keeps transmitting at
  /// `rate_gbps` — i.e. time until depletion (while draining) or until the
  /// budget refills past the recovery threshold. +infinity if stable.
  double time_until_change(double rate_gbps) const noexcept;

  /// Time to fully refill the bucket from the current budget while resting.
  double time_to_full_refill() const noexcept;

  /// Resets the budget to the configured initial value (a "fresh VM").
  void reset() noexcept;

  /// Overrides the current budget — used to model "the system left in an
  /// unknown state by previous experiments" (Figure 19).
  void set_budget(double gbit) noexcept;

  const TokenBucketConfig& config() const noexcept { return config_; }

  /// Installs (or clears, with nullptr) the mode-transition observer. The
  /// hook fires on every high->low / low->high flip caused by `advance` or
  /// `set_budget`, with the post-transition budget.
  void set_transition_hook(TransitionHook hook, void* ctx) noexcept {
    hook_ = hook;
    hook_ctx_ = ctx;
  }

 private:
  void notify_transition() noexcept {
    if (hook_) hook_(hook_ctx_, low_mode_, budget_);
  }

  TokenBucketConfig config_;
  double budget_;
  bool low_mode_;
  TransitionHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
};

}  // namespace cloudrepro::simnet
