#include "simnet/qos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simnet/units.h"

namespace cloudrepro::simnet {

// ---- FixedRateQos -----------------------------------------------------------

FixedRateQos::FixedRateQos(double rate_gbps) : rate_gbps_{rate_gbps} {
  if (rate_gbps <= 0.0) throw std::invalid_argument{"FixedRateQos: rate must be positive"};
}

double FixedRateQos::time_until_change(double) const { return kInfiniteTime; }

std::unique_ptr<QosPolicy> FixedRateQos::clone() const {
  return std::make_unique<FixedRateQos>(*this);
}

// ---- TokenBucketQos ---------------------------------------------------------

TokenBucketQos::TokenBucketQos(const TokenBucketConfig& config) : bucket_{config} {}

std::unique_ptr<QosPolicy> TokenBucketQos::clone() const {
  return std::make_unique<TokenBucketQos>(*this);
}

// ---- StochasticQos ----------------------------------------------------------

StochasticQos::StochasticQos(Sampler sampler, double resample_interval_s, stats::Rng rng)
    : sampler_{std::move(sampler)},
      resample_interval_s_{resample_interval_s},
      rng_{rng},
      initial_rng_{rng},
      current_rate_{0.0} {
  if (!sampler_) throw std::invalid_argument{"StochasticQos: sampler must be callable"};
  if (resample_interval_s <= 0.0) {
    throw std::invalid_argument{"StochasticQos: resample interval must be positive"};
  }
  resample();
}

void StochasticQos::resample() {
  current_rate_ = std::max(1e-3, sampler_(rng_));
}

void StochasticQos::advance(double dt, double /*rate_gbps*/) {
  time_in_interval_ += dt;
  // Cross as many resample boundaries as dt covers; only the final sample
  // matters for the post-advance state.
  while (time_in_interval_ >= resample_interval_s_) {
    time_in_interval_ -= resample_interval_s_;
    resample();
  }
}

double StochasticQos::time_until_change(double /*rate_gbps*/) const {
  return resample_interval_s_ - time_in_interval_;
}

void StochasticQos::reset() {
  rng_ = initial_rng_;
  time_in_interval_ = 0.0;
  resample();
}

std::unique_ptr<QosPolicy> StochasticQos::clone() const {
  return std::make_unique<StochasticQos>(*this);
}

// ---- PerCoreQos -------------------------------------------------------------

PerCoreQos::PerCoreQos(const PerCoreQosConfig& config, stats::Rng rng)
    : config_{config}, rng_{rng}, initial_rng_{rng} {
  if (config.cores <= 0) throw std::invalid_argument{"PerCoreQos: cores must be positive"};
  if (config.per_core_gbps <= 0.0 || config.max_gbps <= 0.0) {
    throw std::invalid_argument{"PerCoreQos: rates must be positive"};
  }
  resample_jitter();
}

double PerCoreQos::nominal_rate() const noexcept {
  return std::min(static_cast<double>(config_.cores) * config_.per_core_gbps,
                  config_.max_gbps);
}

double PerCoreQos::allowed_rate() const {
  double rate = nominal_rate() * jitter_factor_;
  if (warmup_remaining_ > 0.0) {
    // Fraction of the warm-up still ahead scales the cold-path penalty, so
    // the rate climbs back smoothly as the flow is promoted.
    const double cold_fraction = warmup_remaining_ / config_.warmup_s;
    rate *= 1.0 - cold_penalty_ * cold_fraction;
  }
  return std::max(rate, 1e-3);
}

void PerCoreQos::advance(double dt, double rate_gbps) {
  const bool transmitting = rate_gbps > 1e-9;
  if (transmitting) {
    if (idle_time_ > config_.idle_threshold_s) {
      // Resuming after a long idle period: flow starts on the cold path.
      draw_cold_penalty();
      warmup_remaining_ = config_.warmup_s;
    }
    idle_time_ = 0.0;
    warmup_remaining_ = std::max(0.0, warmup_remaining_ - dt);
  } else {
    idle_time_ += dt;
  }
  time_in_interval_ += dt;
  while (time_in_interval_ >= config_.resample_interval_s) {
    time_in_interval_ -= config_.resample_interval_s;
    resample_jitter();
  }
}

double PerCoreQos::time_until_change(double rate_gbps) const {
  double bound = config_.resample_interval_s - time_in_interval_;
  if (rate_gbps > 1e-9 && warmup_remaining_ > 0.0) {
    bound = std::min(bound, warmup_remaining_);
  }
  return std::max(bound, 1e-6);
}

void PerCoreQos::reset() {
  rng_ = initial_rng_;
  jitter_factor_ = 1.0;
  idle_time_ = 0.0;
  warmup_remaining_ = 0.0;
  cold_penalty_ = 0.0;
  time_in_interval_ = 0.0;
  resample_jitter();
}

void PerCoreQos::resample_jitter() {
  jitter_factor_ = std::clamp(rng_.normal(1.0, config_.jitter_fraction), 0.8, 1.02);
}

void PerCoreQos::draw_cold_penalty() {
  // Pareto-tailed fractional penalty, so most resumes cost ~cold_penalty_mean
  // but a few cost much more — the long tail of Figure 5's 5-30 box.
  const double shape = config_.cold_penalty_pareto_shape;
  const double scale = config_.cold_penalty_mean * (shape - 1.0) / shape;
  cold_penalty_ = std::clamp(rng_.pareto(scale, shape), 0.0, 0.9);
}

std::unique_ptr<QosPolicy> PerCoreQos::clone() const {
  return std::make_unique<PerCoreQos>(*this);
}

}  // namespace cloudrepro::simnet
