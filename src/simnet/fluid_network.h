#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "simnet/qos.h"
#include "simnet/units.h"

namespace cloudrepro::obs {
class Counter;
class MetricsRegistry;
class Tracer;
}  // namespace cloudrepro::obs

namespace cloudrepro::simnet {

using NodeId = std::size_t;
using FlowId = std::size_t;

/// A (possibly unbounded) data transfer between two nodes.
struct Flow {
  NodeId src = 0;
  NodeId dst = 0;
  double remaining_gbit = kInfiniteBytes;  ///< Gbit left; +inf for open-ended.
  double transferred_gbit = 0.0;
  double rate_gbps = 0.0;  ///< Current max-min fair allocation.
  bool active = false;
  double start_time = 0.0;
  double end_time = -1.0;  ///< Set when the flow completes or is stopped.
};

/// Fluid-flow discrete-event network simulator.
///
/// Bandwidth between VMs is modelled as a fluid: at any instant every active
/// flow receives its max-min fair share subject to (a) the *egress QoS
/// policy* of its source node — the mechanism the paper shows dominates
/// cloud network behaviour — and (b) the ingress line rate of its
/// destination. Time advances event-to-event: the next flow completion, the
/// next QoS state change (token-bucket depletion/recovery, jitter resample),
/// or the caller's horizon, whichever is first.
///
/// The fluid abstraction is exact for the bandwidth-oriented figures
/// (4, 5, 6, 10, 11, 14-19); packet-level effects (RTT, retransmissions —
/// Figures 7, 8, 9, 12) are handled by `PacketPath` and validated against
/// this model in `bench_ablation_fluid_vs_packet`.
class FluidNetwork {
 public:
  /// Observer invoked after every internal step with the post-step network
  /// and the step length. Probes use it to integrate rates into samples.
  using StepObserver = std::function<void(const FluidNetwork&, double t, double dt)>;

  FluidNetwork() = default;

  /// Adds a node with the given egress shaping policy and an optional
  /// ingress line-rate cap (defaults to unlimited).
  NodeId add_node(std::unique_ptr<QosPolicy> egress,
                  double ingress_cap_gbps = kInfiniteBytes);

  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Starts a transfer of `gbit` (default: open-ended) from src to dst.
  FlowId start_flow(NodeId src, NodeId dst, double gbit = kInfiniteBytes);

  /// Stops an open-ended flow (no-op if already complete).
  void stop_flow(FlowId id);

  /// Advances simulated time to `t_end`.
  void run_until(double t_end);

  /// Advances simulated time by `dt` seconds.
  void run_for(double dt) { run_until(now_ + dt); }

  /// Runs until every finite flow completes or `deadline` is reached.
  /// Returns true when all finite flows completed.
  bool run_until_flows_complete(double deadline);

  double now() const noexcept { return now_; }

  const Flow& flow(FlowId id) const { return flows_.at(id); }
  std::size_t flow_count() const noexcept { return flows_.size(); }
  std::size_t active_flow_count() const noexcept;

  QosPolicy& node_qos(NodeId id) { return *nodes_.at(id).egress; }
  const QosPolicy& node_qos(NodeId id) const { return *nodes_.at(id).egress; }

  /// Aggregate egress rate of a node under the current allocation. O(1):
  /// served from a cache maintained by `allocate_rates` and flow removal.
  double node_egress_rate(NodeId id) const;

  /// Aggregate ingress rate of a node under the current allocation. O(1).
  double node_ingress_rate(NodeId id) const;

  // --- Fault-injection hooks (src/faults drives these) ---------------------

  /// Scales the node's NIC — both the egress QoS grant and the ingress cap —
  /// by `factor` in (0, 1]. Models a transient slowdown (degraded
  /// line_rate_gbps); 1.0 restores full speed.
  void set_node_rate_factor(NodeId id, double factor);
  double node_rate_factor(NodeId id) const { return nodes_.at(id).rate_factor; }

  /// Packet-loss burst on the node's egress: fraction `loss` of every wire
  /// transmission is retransmitted bytes. Goodput (flow progress) drops to
  /// (1 - loss) x the allocated rate while the *wire* rate still drains the
  /// QoS token budget — lossy links burn budget without moving data.
  void set_node_loss(NodeId id, double loss);
  double node_loss(NodeId id) const { return nodes_.at(id).loss_fraction; }

  /// Cumulative retransmitted Gbit charged to the node's egress.
  double node_retransmitted_gbit(NodeId id) const {
    return nodes_.at(id).retransmitted_gbit;
  }

  /// Kills a node: every active flow it sources or sinks is stopped at the
  /// current time, and future start_flow calls touching it throw.
  void fail_node(NodeId id);
  bool node_failed(NodeId id) const { return nodes_.at(id).failed; }

  /// The egress rate currently grantable to the node (QoS grant x degrade
  /// factor); 0 for failed nodes. Speculation uses this to pick the fastest
  /// healthy donor.
  double node_allowed_rate(NodeId id) const;

  void set_step_observer(StepObserver observer) { observer_ = std::move(observer); }

  // --- Observability (src/obs; compiled out with CLOUDREPRO_OBS=0) ---------

  /// Attaches a tracer and/or metrics registry (either may be null). Traced:
  /// flow starts/ends, rate reallocations, and token-bucket depletion /
  /// recovery transitions (stamped with simulated time, lane = node id,
  /// track 1). Counted: `simnet.allocations`, `simnet.steps`,
  /// `simnet.flows_started`, `simnet.flows_completed`. A no-op when the
  /// observability layer is compiled out.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  struct Node {
    std::unique_ptr<QosPolicy> egress;
    double ingress_cap_gbps = kInfiniteBytes;
    double rate_factor = 1.0;     ///< Degrade multiplier on egress + ingress.
    double loss_fraction = 0.0;   ///< Egress packet-loss burst in effect.
    bool failed = false;
    double retransmitted_gbit = 0.0;
  };

  /// Computes the max-min fair allocation for all active flows
  /// (progressive filling) and rebuilds the per-node rate caches.
  void allocate_rates();

  /// Advances one event step, never past `t_bound`.
  void step_once(double t_bound);

  /// Removes an id from the active index (O(1) via the slot index).
  void deactivate(FlowId id);

  /// Swap-erases `active_ids_[slot]`, maintaining the slot index and
  /// subtracting the removed flow's allocation from the rate caches.
  void remove_active_at(std::size_t slot);

  /// Debug-only: verifies the cached per-node aggregates against a fresh
  /// rescan of the active set. Compiles to nothing under NDEBUG.
  void assert_rate_caches() const;

  std::vector<Node> nodes_;
  std::vector<Flow> flows_;
  /// Ids of currently active flows. Long probes accumulate tens of
  /// thousands of completed flow records; every per-step scan must touch
  /// only the live ones or week-long simulations go quadratic.
  std::vector<FlowId> active_ids_;
  /// Position of each flow in `active_ids_` (`kNoSlot` when inactive), so
  /// removal never scans the live set — all-to-all shuffles and `fail_node`
  /// deactivate flows constantly.
  std::vector<std::size_t> active_slot_;
  /// Per-node aggregate rates under the current allocation, rebuilt by
  /// `allocate_rates` and decremented on flow removal, making
  /// `node_egress_rate`/`node_ingress_rate` O(1) instead of O(active
  /// flows) — they are called per node per event step.
  std::vector<double> egress_rate_;
  std::vector<double> ingress_rate_;
  double now_ = 0.0;
  StepObserver observer_;

  /// Context handed to a node's token-bucket transition hook; heap-allocated
  /// so the pointer survives `nodes_` reallocation.
  struct BucketHookCtx {
    FluidNetwork* net = nullptr;
    NodeId node = 0;
  };
  static void bucket_transition_hook(void* ctx, bool to_low, double budget_gbit);
  void install_bucket_hook(NodeId id);

  obs::Tracer* tracer_ = nullptr;
  obs::Counter* c_allocations_ = nullptr;
  obs::Counter* c_steps_ = nullptr;
  obs::Counter* c_flows_started_ = nullptr;
  obs::Counter* c_flows_completed_ = nullptr;
  /// Timestamp bucket transitions resolve to: QoS advances run before `now_`
  /// moves, but the event-driven step length lands transitions exactly on
  /// the step's end boundary.
  double step_end_ = 0.0;
  std::vector<std::unique_ptr<BucketHookCtx>> bucket_hooks_;
};

}  // namespace cloudrepro::simnet
