#include "simnet/tcp_stream.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/calendar_queue.h"
#include "simnet/units.h"

namespace cloudrepro::simnet {

namespace {

enum class EventKind { kAck, kLossSignal, kRto };

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kAck;
  double send_time = 0.0;  ///< For RTT samples on acks.
};

}  // namespace

TcpStreamResult run_tcp_stream(QosPolicy& qos, const VnicConfig& vnic,
                               const TcpConfig& tcp, const PacketPathConfig& config,
                               stats::Rng& rng) {
  if (config.duration_s <= 0.0) {
    throw std::invalid_argument{"run_tcp_stream: duration must be positive"};
  }
  if (tcp.initial_cwnd_segments < 1.0 || tcp.max_cwnd_segments < tcp.initial_cwnd_segments) {
    throw std::invalid_argument{"run_tcp_stream: invalid congestion-window bounds"};
  }

  const double segment = vnic.segment_bytes(config.write_bytes);
  const double base_loss = vnic.loss_probability(segment);
  const double queue_capacity = vnic.queue_byte_capacity;

  TcpStreamResult result;
  result.duration_s = config.duration_s;

  // Calendar queue over the in-flight window's ack/loss timers. Event
  // spacing tracks the RTT scale, which seeds the bucket width; equal
  // timestamps (e.g. a burst of tail drops detected together) pop in push
  // order, so the event flow is a pure function of the send sequence.
  runtime::CalendarQueue<Event> events{
      vnic.base_rtt_s > 0.0 ? vnic.base_rtt_s : 1e-3};

  double now = 0.0;
  double server_free_at = 0.0;   ///< Bottleneck queue: time the server drains.
  double cwnd = tcp.initial_cwnd_segments;
  double ssthresh = tcp.initial_ssthresh_segments;
  double in_flight = 0.0;        ///< Segments sent but not yet acked/lost.
  double srtt = vnic.base_rtt_s * 2.0;
  bool in_recovery = false;

  double last_qos_advance = 0.0;
  double delivered_since_advance = 0.0;

  double interval_delivered = 0.0;
  double interval_start = 0.0;

  std::size_t recorded = 0;
  const std::size_t keep_every = std::max<std::size_t>(
      1, config.max_recorded_packets == 0
             ? 1
             : static_cast<std::size_t>(
                   gbit_to_bytes(qos.allowed_rate()) * config.duration_s / segment /
                   static_cast<double>(config.max_recorded_packets)));

  const auto advance_qos_to = [&](double t) {
    const double dt = t - last_qos_advance;
    if (dt <= 0.0) return;
    const double rate = bytes_to_gbit(delivered_since_advance) / dt;
    qos.advance(dt, rate);
    last_qos_advance = t;
    delivered_since_advance = 0.0;
  };

  const auto flush_interval = [&](double t) {
    while (t - interval_start >= config.bandwidth_sample_interval_s) {
      result.bandwidth_gbps.push_back(bytes_to_gbit(interval_delivered) /
                                      config.bandwidth_sample_interval_s);
      result.cwnd_segments.push_back(cwnd);
      interval_delivered = 0.0;
      interval_start += config.bandwidth_sample_interval_s;
    }
  };

  const auto effective_window = [&] {
    double window = std::min(cwnd, tcp.max_cwnd_segments);
    if (tcp.receive_window_bytes > 0.0) {
      window = std::min(window, tcp.receive_window_bytes / segment);
    }
    return window;
  };

  const auto send_segment = [&](bool is_retransmission) {
    const double rate_bytes = gbit_to_bytes(qos.allowed_rate());
    const double service_s = segment / rate_bytes + vnic.per_segment_overhead_s;
    const double queue_wait = std::max(0.0, server_free_at - now);

    // Drop-tail at the bottleneck queue plus the vNIC's byte-pressure loss.
    const bool tail_drop = queue_wait * rate_bytes + segment > queue_capacity;
    const bool random_drop = rng.bernoulli(base_loss);
    in_flight += 1.0;

    if (tail_drop || random_drop) {
      // Loss is detected a little after the ack of the following in-order
      // data would have arrived (triple duplicate ACK).
      const double detect = now + queue_wait + 3.0 * service_s +
                            vnic.base_rtt_s + srtt;
      events.push(detect, Event{detect, EventKind::kLossSignal, now});
      if (is_retransmission) ++result.retransmissions;
      return;
    }

    server_free_at = std::max(server_free_at, now) + service_s;
    const double jitter = std::exp(rng.normal(0.0, 0.2 * vnic.rtt_jitter_sigma));
    const double ack_time = server_free_at + vnic.base_rtt_s * jitter;
    events.push(ack_time, Event{ack_time, EventKind::kAck, now});
    if (is_retransmission) {
      ++result.retransmissions;
    }
  };

  // Prime the pump.
  while (in_flight < effective_window() && now < config.duration_s) {
    send_segment(false);
  }

  while (now < config.duration_s && !events.empty()) {
    const Event ev = events.pop();
    if (ev.time > config.duration_s) break;
    now = ev.time;
    flush_interval(now);

    switch (ev.kind) {
      case EventKind::kAck: {
        in_flight = std::max(0.0, in_flight - 1.0);
        ++result.segments_sent;
        result.delivered_gbit += bytes_to_gbit(segment);
        delivered_since_advance += segment;
        interval_delivered += segment;

        const double rtt = now - ev.send_time;
        srtt = 0.875 * srtt + 0.125 * rtt;
        if (recorded++ % keep_every == 0) {
          result.packets.push_back(PacketSample{ev.send_time, rtt, false});
        }

        if (in_recovery) {
          in_recovery = false;  // New ack ends fast recovery.
        }
        if (cwnd < ssthresh) {
          cwnd += 1.0;  // Slow start: +1 per ack.
        } else {
          cwnd += 1.0 / cwnd;  // Congestion avoidance.
        }
        cwnd = std::min(cwnd, tcp.max_cwnd_segments);
        break;
      }
      case EventKind::kLossSignal: {
        in_flight = std::max(0.0, in_flight - 1.0);
        if (!in_recovery) {
          // Fast retransmit/recovery: multiplicative decrease once per
          // loss window.
          ssthresh = std::max(cwnd / 2.0, 2.0);
          cwnd = ssthresh;
          in_recovery = true;
        }
        if (recorded++ % keep_every == 0) {
          result.packets.push_back(PacketSample{ev.send_time, now - ev.send_time, true});
        }
        send_segment(true);  // Retransmit the lost segment.
        break;
      }
      case EventKind::kRto: {
        // Unused in this event flow (losses always produce a signal), kept
        // for future half-open scenarios.
        ++result.timeouts;
        ssthresh = std::max(cwnd / 2.0, 2.0);
        cwnd = tcp.initial_cwnd_segments;
        break;
      }
    }

    advance_qos_to(now);

    // Refill the window.
    while (in_flight < effective_window() && now < config.duration_s) {
      send_segment(false);
    }
  }

  flush_interval(config.duration_s);
  return result;
}

}  // namespace cloudrepro::simnet
