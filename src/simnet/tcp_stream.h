#pragma once

#include <cstddef>
#include <vector>

#include "simnet/packet_path.h"
#include "simnet/qos.h"
#include "stats/rng.h"

namespace cloudrepro::simnet {

/// Full TCP congestion-control stream model.
///
/// The figure-generating path (`run_packet_stream`) models TCP's effect on
/// the queue statistically (a sawtooth occupancy). This module implements
/// the real control loop — slow start, congestion avoidance (AIMD), fast
/// retransmit/recovery, RTO — over the same virtual-NIC bottleneck, so the
/// simplified model can be validated against it
/// (`bench_ablation_tcp_model`). It is also useful on its own for studying
/// how congestion control interacts with token-bucket rate changes
/// (the paper's Figure 7 regime shift).
struct TcpConfig {
  double initial_cwnd_segments = 10.0;   ///< RFC 6928 initial window.
  double initial_ssthresh_segments = 256.0;
  double max_cwnd_segments = 4096.0;
  double min_rto_s = 0.2;                ///< Conservative lower bound.
  /// Receive-window cap in bytes (flow control); 0 = unlimited.
  double receive_window_bytes = 0.0;
};

struct TcpStreamResult {
  std::size_t segments_sent = 0;       ///< Unique segments delivered.
  std::size_t retransmissions = 0;     ///< Loss-triggered resends.
  std::size_t timeouts = 0;            ///< RTO events.
  double duration_s = 0.0;
  double delivered_gbit = 0.0;

  /// Mean goodput over the stream (Gbps).
  double mean_goodput_gbps() const noexcept {
    return duration_s > 0.0 ? delivered_gbit / duration_s : 0.0;
  }

  std::vector<PacketSample> packets;   ///< RTT samples (possibly thinned).
  std::vector<double> bandwidth_gbps;  ///< Goodput per sample interval.
  std::vector<double> cwnd_segments;   ///< Congestion window per interval.

  double retransmission_rate() const noexcept {
    const auto total = segments_sent + retransmissions;
    return total == 0 ? 0.0
                      : static_cast<double>(retransmissions) /
                            static_cast<double>(total);
  }
};

/// Runs a greedy TCP stream against the bottleneck defined by the QoS
/// policy and virtual NIC. The policy is advanced with the realized
/// throughput, so token buckets deplete and the stream adapts — slow start
/// at the high rate, a loss burst and cwnd collapse at the throttle
/// transition, then a new equilibrium at the capped rate.
TcpStreamResult run_tcp_stream(QosPolicy& qos, const VnicConfig& vnic,
                               const TcpConfig& tcp, const PacketPathConfig& config,
                               stats::Rng& rng);

}  // namespace cloudrepro::simnet
