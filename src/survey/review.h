#pragma once

#include <map>
#include <vector>

#include "stats/rng.h"
#include "survey/article.h"

namespace cloudrepro::survey {

/// One reviewer's binary judgements over the selected articles, for the
/// three Figure 1a categories.
struct ReviewerLabels {
  std::vector<bool> reports_central_tendency;
  std::vector<bool> reports_variability;
  std::vector<bool> underspecified;
};

/// Simulates one human reviewer reading the articles: each ground-truth
/// judgement is flipped with probability `error_rate` (reviewers disagree
/// occasionally; the paper validates agreement with Cohen's Kappa and
/// reaches 0.95 / 0.81 / 0.85 for the three categories).
ReviewerLabels review_articles(const std::vector<Article>& articles,
                               double error_rate, stats::Rng& rng);

/// Inter-reviewer agreement per category.
struct AgreementReport {
  double kappa_central_tendency = 0.0;
  double kappa_variability = 0.0;
  double kappa_underspecified = 0.0;
};

AgreementReport agreement(const ReviewerLabels& a, const ReviewerLabels& b);

/// The consensus rule the paper uses for Figure 1: "out of the two
/// reviewers' scores, we plot the lower scores, i.e., ones that are more
/// favorable to the articles". For the negative category (under-specified)
/// the favorable choice is the logical AND; for the positive categories it
/// is the OR.
ReviewerLabels favorable_consensus(const ReviewerLabels& a, const ReviewerLabels& b);

/// Aggregated survey results (Figure 1 + Table 2's bottom line).
struct SurveyFindings {
  std::size_t selected_articles = 0;
  long long total_citations = 0;

  double pct_reporting_central_tendency = 0.0;  ///< Of all selected articles.
  double pct_reporting_variability = 0.0;       ///< Of all selected articles.
  double pct_underspecified = 0.0;              ///< Of all selected articles.

  /// Of the articles reporting averages/medians, the share also reporting
  /// variability or confidence (the paper finds only 37%).
  double pct_variability_given_central = 0.0;

  /// Repetition-count histogram over properly specified articles
  /// (Figure 1b), as percentage of all selected articles.
  std::map<int, double> repetition_pct;

  /// Share of properly specified studies using <= 15 repetitions
  /// (the paper: 76%).
  double pct_properly_specified_le15_reps = 0.0;
};

/// Computes the findings from consensus labels plus the articles'
/// repetition counts.
SurveyFindings summarize_survey(const std::vector<Article>& articles,
                                const ReviewerLabels& consensus);

}  // namespace cloudrepro::survey
