#pragma once

#include <vector>

#include "stats/rng.h"
#include "survey/article.h"

namespace cloudrepro::survey {

/// Calibration knobs for the synthetic corpus. Defaults reproduce the
/// paper's funnel (Table 2: 1,867 total -> 138 keyword matches -> 44 with
/// cloud experiments; 15 NSDI, 7 OSDI, 7 SOSP, 15 SC; 11,203 citations) and
/// Figure 1's reporting marginals (>60% under-specified; of the articles
/// reporting averages/medians only ~37% report variability; most reported
/// repetition counts in {3, 5, 10}).
struct CorpusOptions {
  int total_articles = 1867;
  int keyword_matches = 138;
  int cloud_articles = 44;
  int nsdi_cloud = 15;
  int osdi_cloud = 7;
  int sosp_cloud = 7;
  int sc_cloud = 15;
  int total_citations_of_selected = 11203;

  /// Fraction of cloud articles written "carefully" (they state measures,
  /// repetitions, sometimes variability); the rest are careless reporters.
  double careful_fraction = 0.40;
  double careful_reports_reps = 0.95;
  double careful_reports_variability = 0.45;
  double careless_reports_measure = 0.18;
  double careless_reports_reps = 0.05;
  double careless_reports_variability = 0.05;
};

/// Generates the full synthetic corpus (all venues/years, pre-filtering).
std::vector<Article> generate_corpus(const CorpusOptions& options, stats::Rng& rng);

/// Stage 1 of Table 2: automatic keyword filter.
std::vector<Article> filter_by_keywords(const std::vector<Article>& corpus);

/// Stage 2 of Table 2: manual filter for cloud-based experiments.
std::vector<Article> filter_cloud_experiments(const std::vector<Article>& keyword_matches);

}  // namespace cloudrepro::survey
