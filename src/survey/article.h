#pragma once

#include <string>

namespace cloudrepro::survey {

/// Venues covered by the systematic survey (Table 1).
enum class Venue { kNsdi, kOsdi, kSosp, kSc };

std::string to_string(Venue venue);

/// Ground-truth record of one surveyed article's experiment reporting.
///
/// The real corpus is the 2008-2018 proceedings of NSDI/OSDI/SOSP/SC; we
/// cannot ship those texts, so `generate_corpus` synthesizes a corpus whose
/// *marginals* are calibrated to the paper's published funnel (Table 2) and
/// reporting percentages (Figure 1) — see DESIGN.md's substitution table.
struct Article {
  Venue venue = Venue::kNsdi;
  int year = 2008;
  int citations = 0;

  /// Matches the keyword query of Table 1 (big data, streaming, Hadoop,
  /// MapReduce, Spark, data storage, graph processing, data analytics) in
  /// keywords/title/abstract.
  bool keyword_match = false;

  /// Empirical evaluation performed on a public cloud (the manual filter).
  bool cloud_experiments = false;

  // -- Reporting attributes the reviewers judge (Figure 1a criteria) --

  /// (i) Reports average or median metrics over a number of experiments.
  bool reports_central_tendency = false;

  /// (ii) Reports variability (stddev, percentiles) or confidence (CIs).
  bool reports_variability = false;

  /// (iii) Number of experiment repetitions reported; 0 = not reported.
  int repetitions = 0;

  /// Severely under-specified: "the authors do not mention how many times
  /// they repeated the experiments or even what numbers they are reporting"
  /// — i.e. the repetition count is missing, or the reported measure is
  /// never stated. Note this overlaps with reports_central_tendency:
  /// Figure 1a's bars "are not mutually exclusive".
  bool underspecified() const noexcept {
    return repetitions == 0 || !reports_central_tendency;
  }

  /// "Properly specified": the repetition count is reported.
  bool properly_specified() const noexcept { return repetitions > 0; }
};

}  // namespace cloudrepro::survey
