#include "survey/corpus.h"

#include <algorithm>
#include <stdexcept>

namespace cloudrepro::survey {

std::string to_string(Venue venue) {
  switch (venue) {
    case Venue::kNsdi: return "NSDI";
    case Venue::kOsdi: return "OSDI";
    case Venue::kSosp: return "SOSP";
    case Venue::kSc: return "SC";
  }
  return "unknown";
}

namespace {

/// Repetition counts observed in the properly-specified literature
/// (Figure 1b's x axis) with weights matching its bar heights: 3, 5 and 10
/// dominate, with occasional 9/15/20 and a rare 100.
int draw_repetitions(stats::Rng& rng) {
  // Weighted so that ~76% of properly specified articles use <= 15
  // repetitions, as the paper reports.
  const double u = rng.uniform();
  if (u < 0.24) return 3;
  if (u < 0.52) return 5;
  if (u < 0.57) return 9;
  if (u < 0.73) return 10;
  if (u < 0.76) return 15;
  if (u < 0.89) return 20;
  return 100;
}

void assign_reporting(Article& article, const CorpusOptions& options, stats::Rng& rng) {
  const bool careful = rng.bernoulli(options.careful_fraction);
  if (careful) {
    article.reports_central_tendency = true;
    if (rng.bernoulli(options.careful_reports_reps)) {
      article.repetitions = draw_repetitions(rng);
    }
    article.reports_variability = rng.bernoulli(options.careful_reports_variability);
  } else {
    article.reports_central_tendency = rng.bernoulli(options.careless_reports_measure);
    if (rng.bernoulli(options.careless_reports_reps)) {
      article.repetitions = draw_repetitions(rng);
    }
    article.reports_variability =
        article.reports_central_tendency &&
        rng.bernoulli(options.careless_reports_variability);
  }
}

/// Citation counts for the 44 selected articles: heavy-tailed (a few
/// landmark systems dominate), rescaled to hit the published total exactly.
std::vector<int> draw_citations(int count, int total, stats::Rng& rng) {
  std::vector<double> raw(static_cast<std::size_t>(count));
  double sum = 0.0;
  for (auto& c : raw) {
    c = rng.pareto(30.0, 1.2);
    sum += c;
  }
  std::vector<int> cites(raw.size());
  int assigned = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    cites[i] = std::max(1, static_cast<int>(raw[i] / sum * static_cast<double>(total)));
    assigned += cites[i];
  }
  cites[0] += total - assigned;  // Absorb rounding in the largest slot.
  return cites;
}

}  // namespace

std::vector<Article> generate_corpus(const CorpusOptions& options, stats::Rng& rng) {
  if (options.cloud_articles > options.keyword_matches ||
      options.keyword_matches > options.total_articles) {
    throw std::invalid_argument{"generate_corpus: funnel counts must be decreasing"};
  }
  const int venue_cloud_total = options.nsdi_cloud + options.osdi_cloud +
                                options.sosp_cloud + options.sc_cloud;
  if (venue_cloud_total != options.cloud_articles) {
    throw std::invalid_argument{"generate_corpus: venue split must sum to cloud_articles"};
  }

  std::vector<Article> corpus;
  corpus.reserve(static_cast<std::size_t>(options.total_articles));

  const Venue venues[] = {Venue::kNsdi, Venue::kOsdi, Venue::kSosp, Venue::kSc};
  const int per_venue_cloud[] = {options.nsdi_cloud, options.osdi_cloud,
                                 options.sosp_cloud, options.sc_cloud};
  const auto citations =
      draw_citations(options.cloud_articles, options.total_citations_of_selected, rng);

  // 1) The 44 selected articles: keyword-matching, cloud-evaluated.
  std::size_t cite_index = 0;
  for (int v = 0; v < 4; ++v) {
    for (int i = 0; i < per_venue_cloud[v]; ++i) {
      Article a;
      a.venue = venues[v];
      a.year = static_cast<int>(rng.uniform_int(2008, 2018));
      a.keyword_match = true;
      a.cloud_experiments = true;
      a.citations = citations[cite_index++];
      assign_reporting(a, options, rng);
      corpus.push_back(a);
    }
  }

  // 2) Keyword matches without cloud experiments.
  const int keyword_only = options.keyword_matches - options.cloud_articles;
  for (int i = 0; i < keyword_only; ++i) {
    Article a;
    a.venue = venues[rng.uniform_int(0, 3)];
    a.year = static_cast<int>(rng.uniform_int(2008, 2018));
    a.keyword_match = true;
    a.cloud_experiments = false;
    a.citations = static_cast<int>(rng.pareto(10.0, 1.3));
    assign_reporting(a, options, rng);
    corpus.push_back(a);
  }

  // 3) The remainder of the proceedings.
  const int rest = options.total_articles - options.keyword_matches;
  for (int i = 0; i < rest; ++i) {
    Article a;
    a.venue = venues[rng.uniform_int(0, 3)];
    a.year = static_cast<int>(rng.uniform_int(2008, 2018));
    a.keyword_match = false;
    a.cloud_experiments = false;
    a.citations = static_cast<int>(rng.pareto(5.0, 1.3));
    assign_reporting(a, options, rng);
    corpus.push_back(a);
  }

  // Shuffle so selection order carries no information.
  const auto perm = rng.permutation(corpus.size());
  std::vector<Article> shuffled(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) shuffled[perm[i]] = corpus[i];
  return shuffled;
}

std::vector<Article> filter_by_keywords(const std::vector<Article>& corpus) {
  std::vector<Article> out;
  for (const auto& a : corpus) {
    if (a.keyword_match) out.push_back(a);
  }
  return out;
}

std::vector<Article> filter_cloud_experiments(const std::vector<Article>& keyword_matches) {
  std::vector<Article> out;
  for (const auto& a : keyword_matches) {
    if (a.cloud_experiments) out.push_back(a);
  }
  return out;
}

}  // namespace cloudrepro::survey
