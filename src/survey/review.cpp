#include "survey/review.h"

#include <memory>
#include <stdexcept>

#include "stats/kappa.h"

namespace cloudrepro::survey {

namespace {

bool flip(bool truth, double error_rate, stats::Rng& rng) {
  return rng.bernoulli(error_rate) ? !truth : truth;
}

}  // namespace

ReviewerLabels review_articles(const std::vector<Article>& articles,
                               double error_rate, stats::Rng& rng) {
  if (error_rate < 0.0 || error_rate > 0.5) {
    throw std::invalid_argument{"review_articles: error_rate must be in [0, 0.5]"};
  }
  ReviewerLabels labels;
  labels.reports_central_tendency.reserve(articles.size());
  labels.reports_variability.reserve(articles.size());
  labels.underspecified.reserve(articles.size());
  for (const auto& a : articles) {
    labels.reports_central_tendency.push_back(
        flip(a.reports_central_tendency, error_rate, rng));
    labels.reports_variability.push_back(flip(a.reports_variability, error_rate, rng));
    labels.underspecified.push_back(flip(a.underspecified(), error_rate, rng));
  }
  return labels;
}

AgreementReport agreement(const ReviewerLabels& a, const ReviewerLabels& b) {
  // std::vector<bool> is a bitset without contiguous bool storage;
  // materialize plain arrays for the span-based kappa API.
  const auto kappa = [](const std::vector<bool>& x, const std::vector<bool>& y) {
    const std::size_t n = x.size();
    std::unique_ptr<bool[]> xa{new bool[n]};
    std::unique_ptr<bool[]> ya{new bool[n]};
    for (std::size_t i = 0; i < n; ++i) {
      xa[i] = x[i];
      ya[i] = y[i];
    }
    return stats::cohens_kappa({xa.get(), n}, {ya.get(), n});
  };
  AgreementReport report;
  report.kappa_central_tendency = kappa(a.reports_central_tendency, b.reports_central_tendency);
  report.kappa_variability = kappa(a.reports_variability, b.reports_variability);
  report.kappa_underspecified = kappa(a.underspecified, b.underspecified);
  return report;
}

ReviewerLabels favorable_consensus(const ReviewerLabels& a, const ReviewerLabels& b) {
  ReviewerLabels c;
  const std::size_t n = a.reports_central_tendency.size();
  if (b.reports_central_tendency.size() != n) {
    throw std::invalid_argument{"favorable_consensus: label sets differ in size"};
  }
  c.reports_central_tendency.reserve(n);
  c.reports_variability.reserve(n);
  c.underspecified.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.reports_central_tendency.push_back(a.reports_central_tendency[i] ||
                                         b.reports_central_tendency[i]);
    c.reports_variability.push_back(a.reports_variability[i] || b.reports_variability[i]);
    c.underspecified.push_back(a.underspecified[i] && b.underspecified[i]);
  }
  return c;
}

SurveyFindings summarize_survey(const std::vector<Article>& articles,
                                const ReviewerLabels& consensus) {
  if (articles.size() != consensus.reports_central_tendency.size()) {
    throw std::invalid_argument{"summarize_survey: articles/labels size mismatch"};
  }
  SurveyFindings f;
  f.selected_articles = articles.size();
  if (articles.empty()) return f;

  std::size_t central = 0, variability = 0, underspec = 0;
  std::size_t variability_and_central = 0;
  std::size_t properly = 0, properly_le15 = 0;
  std::map<int, std::size_t> rep_counts;

  for (std::size_t i = 0; i < articles.size(); ++i) {
    f.total_citations += articles[i].citations;
    if (consensus.reports_central_tendency[i]) ++central;
    if (consensus.reports_variability[i]) ++variability;
    if (consensus.underspecified[i]) ++underspec;
    if (consensus.reports_central_tendency[i] && consensus.reports_variability[i]) {
      ++variability_and_central;
    }
    if (articles[i].properly_specified()) {
      ++properly;
      ++rep_counts[articles[i].repetitions];
      if (articles[i].repetitions <= 15) ++properly_le15;
    }
  }

  const double n = static_cast<double>(articles.size());
  f.pct_reporting_central_tendency = 100.0 * static_cast<double>(central) / n;
  f.pct_reporting_variability = 100.0 * static_cast<double>(variability) / n;
  f.pct_underspecified = 100.0 * static_cast<double>(underspec) / n;
  f.pct_variability_given_central =
      central == 0 ? 0.0
                   : 100.0 * static_cast<double>(variability_and_central) /
                         static_cast<double>(central);
  for (const auto& [reps, count] : rep_counts) {
    f.repetition_pct[reps] = 100.0 * static_cast<double>(count) / n;
  }
  f.pct_properly_specified_le15_reps =
      properly == 0 ? 0.0
                    : 100.0 * static_cast<double>(properly_le15) /
                          static_cast<double>(properly);
  return f;
}

}  // namespace cloudrepro::survey
