#include "shard/plan.h"

#include <utility>

#include "core/confirm.h"

namespace cloudrepro::shard {

std::size_t shard_of(std::string_view entry_key, std::size_t cell,
                     std::size_t shards) noexcept {
  if (shards == 0) return 0;
  // FNV-1a over the entry key, then the campaign's own seed mixer over the
  // cell index: any participant with (key, cell, shards) derives the same
  // owner, no coordination required.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : entry_key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(core::campaign_repetition_seed(h, cell, 0) %
                                  shards);
}

ShardPlan::ShardPlan(const std::vector<core::CampaignCell>& cells,
                     const core::CampaignOptions& options, std::uint64_t seed)
    : cells_(cells.size()),
      options_(options),
      seed_(seed),
      header_(core::journal_header(cells, options, seed)),
      execution_order_(
          core::campaign_execution_order(cells.size(), options, seed)) {
  if (cells.empty()) throw std::invalid_argument{"ShardPlan: no cells"};
  if (options.repetitions_per_cell < 1) {
    throw std::invalid_argument{"ShardPlan: need at least one repetition"};
  }
}

ShardPlan::Canonical ShardPlan::canonical(std::size_t cell) const {
  const CellState& state = cells_[cell];
  const int cap = options_.repetitions_per_cell;
  Canonical out;
  while (state.values.find(out.prefix) != state.values.end()) ++out.prefix;

  if (!options_.adaptive.enabled) {
    out.complete = out.prefix == cap;
    return out;
  }

  // The stopping rule is a pure function of the cell's value prefix, so the
  // plan re-derives the stop point itself instead of trusting worker
  // claims; a journaled stop record is a cross-check, and a stop record
  // lost to a torn tail is healed at merge (exactly as `run_campaign`
  // re-emits it on resume).
  core::ConfirmMonitor monitor{options_.adaptive};
  int converged_at = -1;
  for (int r = 0; r < out.prefix; ++r) {
    if (monitor.add(state.values.at(r))) {
      converged_at = static_cast<int>(monitor.stop_repetitions());
      break;
    }
  }
  if (converged_at >= 0) {
    if (!state.values.empty() && state.values.rbegin()->first >= converged_at) {
      throw ShardMergeError{
          "beyond_stop",
          "cell " + std::to_string(cell) + " has a value at repetition " +
              std::to_string(state.values.rbegin()->first) +
              " past its stop point " + std::to_string(converged_at)};
    }
    if (state.stop >= 0 && state.stop != converged_at) {
      throw ShardMergeError{
          "conflict", "cell " + std::to_string(cell) + " stop record claims " +
                          std::to_string(state.stop) +
                          " repetitions but the stopping rule stops at " +
                          std::to_string(converged_at)};
    }
    out.stop = converged_at;
    out.complete = true;
    return out;
  }
  if (state.stop >= 0 && out.prefix >= state.stop) {
    throw ShardMergeError{
        "conflict", "cell " + std::to_string(cell) + " stop record claims " +
                        std::to_string(state.stop) +
                        " repetitions but the stopping rule does not stop there"};
  }
  out.complete = out.prefix == cap;
  return out;
}

void ShardPlan::absorb_replay(const core::JournalReplay& replay) {
  for (const auto& [key, value] : replay.done) {
    const auto [cell, rep] = key;
    if (cell >= cells_.size() || rep < 0 ||
        rep >= options_.repetitions_per_cell) {
      throw ShardMergeError{"range", "replayed record out of range"};
    }
    cells_[cell].values[rep] = value;
  }
  for (const auto& [cell, stop] : replay.stops) {
    if (cell >= cells_.size()) {
      throw ShardMergeError{"range", "replayed stop record out of range"};
    }
    cells_[cell].stop = stop;
  }
  for (std::size_t cell = 0; cell < cells_.size(); ++cell) canonical(cell);
}

std::vector<std::string> ShardPlan::resume_lines(std::size_t cell) const {
  if (cell >= cells_.size()) {
    throw ShardMergeError{"range", "resume_lines: cell out of range"};
  }
  const CellState& state = cells_[cell];
  std::vector<std::string> out;
  out.reserve(state.values.size() + 1);
  for (const auto& [rep, value] : state.values) {
    out.push_back(core::journal_line({cell, rep, value}));
  }
  if (state.stop >= 0) {
    out.push_back(core::journal_line(core::journal_stop_record(cell, state.stop)));
  }
  return out;
}

ShardPlan::PushOutcome ShardPlan::push(std::size_t cell,
                                       const std::vector<std::string>& lines) {
  if (cell >= cells_.size()) {
    throw ShardMergeError{"range", "push: cell index " + std::to_string(cell) +
                                       " out of range"};
  }
  const int cap = options_.repetitions_per_cell;
  PushOutcome outcome;

  // Stage against a copy, commit by swap: a push that throws commits
  // nothing, so a conflicting worker cannot leave the plan half-poisoned.
  CellState staged = cells_[cell];
  std::size_t parsed = 0;
  for (const std::string& line : lines) {
    core::JournalRecord record;
    if (!core::parse_journal_line(line, record)) {
      // Torn worker tail: the valid prefix stands, the rest of this push is
      // unparseable garbage (same accept-valid-prefix rule the journal's
      // crash recovery uses). The dropped records simply re-run.
      outcome.dropped = lines.size() - parsed;
      break;
    }
    ++parsed;
    if (record.cell != cell) {
      throw ShardMergeError{"cell_mismatch",
                            "push for cell " + std::to_string(cell) +
                                " contains a record for cell " +
                                std::to_string(record.cell)};
    }
    if (record.kind == core::JournalRecord::Kind::kValue) {
      if (record.rep < 0 || record.rep >= cap) {
        throw ShardMergeError{"range",
                              "record repetition " + std::to_string(record.rep) +
                                  " outside [0, " + std::to_string(cap) + ")"};
      }
      if (const auto it = staged.values.find(record.rep);
          it != staged.values.end()) {
        if (it->second == record.value) {
          ++outcome.duplicates;
          continue;
        }
        throw ShardMergeError{
            "conflict",
            "cell " + std::to_string(cell) + " repetition " +
                std::to_string(record.rep) +
                " already has a different value — two workers disagree on a "
                "deterministic measurement"};
      }
      staged.values[record.rep] = record.value;
      ++outcome.accepted;
    } else {
      if (!options_.adaptive.enabled) {
        throw ShardMergeError{"unexpected_stop",
                              "stop record in a non-adaptive campaign"};
      }
      if (record.rep < 1 || record.rep > cap) {
        throw ShardMergeError{"range", "stop count " +
                                           std::to_string(record.rep) +
                                           " outside [1, " +
                                           std::to_string(cap) + "]"};
      }
      if (staged.stop >= 0) {
        if (staged.stop == record.rep) {
          ++outcome.duplicates;
          continue;
        }
        throw ShardMergeError{"conflict",
                              "cell " + std::to_string(cell) +
                                  " has two disagreeing stop records"};
      }
      staged.stop = record.rep;
      ++outcome.accepted;
    }
  }

  // Validate the staged state as a whole (prefix/stop coherence) before
  // committing; `canonical` throws on contradiction.
  std::swap(cells_[cell], staged);
  try {
    const Canonical c = canonical(cell);
    outcome.cell_complete = c.complete;
  } catch (...) {
    std::swap(cells_[cell], staged);  // Roll back.
    throw;
  }
  outcome.campaign_complete = complete();
  return outcome;
}

bool ShardPlan::cell_complete(std::size_t cell) const {
  return canonical(cell).complete;
}

std::size_t ShardPlan::completed_cells() const {
  std::size_t done = 0;
  for (std::size_t cell = 0; cell < cells_.size(); ++cell) {
    if (canonical(cell).complete) ++done;
  }
  return done;
}

bool ShardPlan::complete() const { return completed_cells() == cells_.size(); }

std::size_t ShardPlan::cell_records(std::size_t cell) const {
  return cells_[cell].values.size();
}

std::string ShardPlan::merge() const {
  std::string out = header_;
  out += '\n';
  const int cap = options_.repetitions_per_cell;
  for (const std::size_t cell : execution_order_) {
    const Canonical c = canonical(cell);
    if (!c.complete) {
      throw ShardMergeError{"incomplete",
                            "merge before completion: cell " +
                                std::to_string(cell) + " has " +
                                std::to_string(cells_[cell].values.size()) +
                                " of its records"};
    }
    const int end = c.stop >= 0 ? c.stop : cap;
    for (int r = 0; r < end; ++r) {
      out += core::journal_line({cell, r, cells_[cell].values.at(r)});
      out += '\n';
    }
    if (c.stop >= 0) {
      out += core::journal_line(core::journal_stop_record(cell, c.stop));
      out += '\n';
    }
  }
  return out;
}

}  // namespace cloudrepro::shard
