#include "shard/runner.h"

#include <condition_variable>
#include <map>
#include <mutex>
#include <stdexcept>

#include "core/confirm.h"
#include "core/journal.h"
#include "runtime/thread_pool.h"

namespace cloudrepro::shard {

namespace {

bool cancelled(const std::atomic<bool>* cancel) noexcept {
  return cancel && cancel->load(std::memory_order_relaxed);
}

}  // namespace

CellTaskResult run_cell_task(std::vector<core::CampaignCell>& cells,
                             const core::CampaignOptions& options,
                             std::uint64_t seed, const CellTask& task,
                             int threads, const std::atomic<bool>* cancel) {
  const std::size_t idx = task.cell;
  if (idx >= cells.size()) {
    throw std::invalid_argument{"run_cell_task: cell index out of range"};
  }
  if (!cells[idx].run_once || !cells[idx].fresh) {
    throw std::invalid_argument{"run_cell_task: cell callables must be set"};
  }
  const int cap = options.repetitions_per_cell;

  std::map<int, double> done;
  int stop_journaled = -1;
  for (const std::string& line : task.resume_lines) {
    core::JournalRecord record;
    if (!core::parse_journal_line(line, record)) continue;
    if (record.cell != idx) {
      throw std::invalid_argument{
          "run_cell_task: resume line for a different cell"};
    }
    if (record.kind == core::JournalRecord::Kind::kValue) {
      if (record.rep >= 0 && record.rep < cap) done[record.rep] = record.value;
    } else {
      stop_journaled = record.rep;
    }
  }

  CellTaskResult result;
  if (options.adaptive.enabled) {
    // Sequential by necessity: the stopping rule decides after every value
    // whether the next repetition exists. Resumed values replay through the
    // monitor so the stop decision is re-derived identically.
    core::ConfirmMonitor monitor{options.adaptive};
    for (int r = 0; r < cap; ++r) {
      double value = 0.0;
      if (const auto it = done.find(r); it != done.end()) {
        value = it->second;
        ++result.resumed;
      } else {
        if (cancelled(cancel)) return result;
        cells[idx].fresh();
        stats::Rng rep_rng{core::campaign_repetition_seed(seed, idx, r)};
        value = cells[idx].run_once(rep_rng);
        result.lines.push_back(core::journal_line({idx, r, value}));
        ++result.executed;
      }
      if (monitor.add(value)) {
        // Re-emitting a stop lost to a torn tail heals it, exactly as
        // run_campaign does on resume.
        if (stop_journaled < 0) {
          result.lines.push_back(core::journal_line(core::journal_stop_record(
              idx, static_cast<int>(monitor.stop_repetitions()))));
        }
        break;
      }
    }
    result.complete = true;
    return result;
  }

  // Non-adaptive: the pending repetition set is known up front, so it
  // parallelizes into pre-assigned slots; lines are emitted rep-ascending
  // regardless of completion order.
  std::vector<int> pending;
  for (int r = 0; r < cap; ++r) {
    if (done.find(r) == done.end()) pending.push_back(r);
  }
  result.resumed = static_cast<std::size_t>(cap) - pending.size();

  std::vector<double> values(pending.size());
  const int workers = runtime::ThreadPool::resolve_thread_count(threads);
  const auto run_one = [&](std::size_t t) {
    const int r = pending[t];
    cells[idx].fresh();
    stats::Rng rep_rng{core::campaign_repetition_seed(seed, idx, r)};
    values[t] = cells[idx].run_once(rep_rng);
  };
  if (cancelled(cancel)) return result;
  if (workers > 1 && pending.size() > 1) {
    runtime::ThreadPool pool{workers};
    std::atomic<std::size_t> left{pending.size()};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
    for (std::size_t t = 0; t < pending.size(); ++t) {
      pool.submit([&, t] {
        try {
          if (!cancelled(cancel)) run_one(t);
        } catch (...) {
          std::lock_guard<std::mutex> lock{mu};
          if (!error) error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock{mu};
        left.fetch_sub(1, std::memory_order_seq_cst);
        cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock{mu};
    cv.wait(lock, [&] { return left.load(std::memory_order_seq_cst) == 0; });
    if (error) std::rethrow_exception(error);
    if (cancelled(cancel)) return result;
  } else {
    for (std::size_t t = 0; t < pending.size(); ++t) {
      if (cancelled(cancel)) return result;
      run_one(t);
    }
  }
  for (std::size_t t = 0; t < pending.size(); ++t) {
    result.lines.push_back(core::journal_line({idx, pending[t], values[t]}));
  }
  result.executed = pending.size();
  result.complete = true;
  return result;
}

}  // namespace cloudrepro::shard
