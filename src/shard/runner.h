#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"

namespace cloudrepro::shard {

/// One cell assignment as shipped by a coordinator: the cell index plus the
/// journal record lines already known for it (the replay prefix — warm
/// cache, or a previous worker's partial progress).
struct CellTask {
  std::size_t cell = 0;
  std::vector<std::string> resume_lines;
};

struct CellTaskResult {
  /// Freshly executed record lines (values rep-ascending; adaptive stop
  /// record inline after its triggering value) — what gets pushed back.
  std::vector<std::string> lines;
  /// The cell reached its stop point (cap or adaptive convergence); false
  /// only on cooperative cancellation.
  bool complete = false;
  std::size_t executed = 0;
  std::size_t resumed = 0;
};

/// Runs one campaign cell exactly as the equivalent single-node
/// `core::run_campaign` would: every repetition draws from
/// `campaign_repetition_seed(seed, cell, rep)`, resumed records replay
/// instead of re-executing (adaptive cells feed them through the
/// ConfirmMonitor first), and the emitted lines are byte-identical to the
/// serial reference journal's. Non-adaptive repetitions parallelize across
/// `threads` into pre-assigned slots; adaptive cells are inherently
/// sequential (the next repetition may never exist).
///
/// Resume lines failing their checksum are ignored (the coordinator never
/// ships torn lines; a worker tolerates them anyway). Throws
/// std::invalid_argument on out-of-range cell/task inputs.
CellTaskResult run_cell_task(std::vector<core::CampaignCell>& cells,
                             const core::CampaignOptions& options,
                             std::uint64_t seed, const CellTask& task,
                             int threads = 1,
                             const std::atomic<bool>* cancel = nullptr);

}  // namespace cloudrepro::shard
