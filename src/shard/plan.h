#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.h"
#include "core/journal.h"

namespace cloudrepro::shard {

/// Sharded distributed campaigns: split a scenario grid's cells across
/// worker processes (and machines), stream each worker's journal records
/// back, and merge them into one journal whose bytes — and therefore whose
/// summary — are identical to a single-node serial run.
///
/// The whole design leans on one invariant from `core::run_campaign`: every
/// measurement is a pure function of (cells, options, seed) via
/// `campaign_repetition_seed`, so *where* a repetition executes never
/// changes its value. That turns the classically hard parts of distribution
/// into bookkeeping:
///
///  - exactly-once is free: a reassigned cell re-executes to byte-identical
///    records, so duplicates are detected (and discarded) by equality;
///  - a record that is *not* byte-identical at the same (cell, repetition)
///    is proof of corruption or version skew, and surfaces as a typed
///    `ShardMergeError` instead of silent divergence;
///  - merge order is not negotiated: the canonical journal is the serial
///    reference order (cells in `campaign_execution_order`, repetitions
///    ascending, adaptive stop records inline after their triggering
///    value), reproducible from the record set alone.

/// A merge invariant was violated: conflicting records, records beyond an
/// adaptive stop point, or a merge attempted before completion. Never
/// thrown for torn/garbled record *tails* — those are truncated (the
/// records they held simply re-run), matching the journal's crash model.
class ShardMergeError : public std::runtime_error {
 public:
  ShardMergeError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  /// Stable discriminator: "conflict", "range", "beyond_stop",
  /// "unexpected_stop", "cell_mismatch", "incomplete".
  const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// Deterministic owner shard for one cell: a hash of (entry key, cell
/// index) mod `shards`. Stable across processes and machines — every
/// participant derives the same partition without coordination.
std::size_t shard_of(std::string_view entry_key, std::size_t cell,
                     std::size_t shards) noexcept;

/// Authoritative record set for one distributed campaign, owned by the
/// coordinator. Accepts journal record lines in any arrival order and from
/// any worker; answers resume prefixes for (re)assignment; decides per-cell
/// and campaign completeness; and emits the canonical merged journal.
///
/// Not thread-safe: the coordinator owns it on one thread (the serve
/// reactor, or a mutex in the in-process driver).
class ShardPlan {
 public:
  /// `cells` is only read for its labels (header) and count; the callables
  /// are not retained. `options`/`seed` must be exactly what the equivalent
  /// single-node `run_campaign` would receive.
  ShardPlan(const std::vector<core::CampaignCell>& cells,
            const core::CampaignOptions& options, std::uint64_t seed);

  const std::string& header() const noexcept { return header_; }
  std::size_t cell_count() const noexcept { return cells_.size(); }
  int repetition_cap() const noexcept { return options_.repetitions_per_cell; }
  bool adaptive() const noexcept { return options_.adaptive.enabled; }
  std::uint64_t seed() const noexcept { return seed_; }
  const std::vector<std::size_t>& execution_order() const noexcept {
    return execution_order_;
  }

  /// Pre-seeds the plan from an existing journal replay (warm cache / a
  /// partial single-node run being continued by a distributed one).
  void absorb_replay(const core::JournalReplay& replay);

  /// Record lines already known for `cell` (values rep-ascending, then the
  /// stop record if journaled) — the replay prefix shipped with an
  /// assignment so a worker re-executes only the remainder.
  std::vector<std::string> resume_lines(std::size_t cell) const;

  struct PushOutcome {
    std::size_t accepted = 0;    ///< Fresh records stored.
    std::size_t duplicates = 0;  ///< Byte-identical re-deliveries discarded.
    std::size_t dropped = 0;     ///< Torn-tail lines discarded unparsed.
    bool cell_complete = false;
    bool campaign_complete = false;
  };

  /// Ingests record lines for one cell. Lines may arrive in any order and
  /// may duplicate known records (byte-identical duplicates are counted and
  /// discarded). The first malformed or checksum-failing line ends the
  /// accepted prefix — it and everything after it in this push is dropped
  /// as a torn worker tail (`dropped`), never an error. Conflicting
  /// records, out-of-range repetitions, records for a different cell, and
  /// stop records that contradict the stopping rule throw ShardMergeError
  /// with nothing committed (strong exception safety).
  PushOutcome push(std::size_t cell, const std::vector<std::string>& lines);

  /// True when the cell's record set proves it finished: a contiguous
  /// repetition prefix reaching the cap, or (adaptive) reaching the
  /// stopping rule's journaled/derived stop point.
  bool cell_complete(std::size_t cell) const;
  std::size_t completed_cells() const;
  bool complete() const;
  /// Known values for `cell` (diagnostics / tests).
  std::size_t cell_records(std::size_t cell) const;

  /// The canonical merged journal (header + records in serial reference
  /// order, trailing newline included). Byte-identical to what a
  /// single-node `threads=1` run would have written. Throws
  /// ShardMergeError{"incomplete"} unless `complete()`.
  std::string merge() const;

 private:
  struct CellState {
    std::map<int, double> values;  ///< rep -> value.
    int stop = -1;                 ///< Journaled stop count; -1 = none.
  };

  /// The cell's canonical content, derived from its records: the contiguous
  /// prefix length, and the stop count the stopping rule implies (-1 when
  /// none). Throws when recorded values extend beyond the derived stop.
  struct Canonical {
    int prefix = 0;  ///< Contiguous values from repetition 0.
    int stop = -1;   ///< Stopping-rule stop count; -1 = runs to cap.
    bool complete = false;
  };
  Canonical canonical(std::size_t cell) const;

  std::vector<CellState> cells_;
  core::CampaignOptions options_;
  std::uint64_t seed_ = 0;
  std::string header_;
  std::vector<std::size_t> execution_order_;
};

}  // namespace cloudrepro::shard
