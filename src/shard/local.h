#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "scenario/runner.h"

namespace cloudrepro::obs {
class MetricsRegistry;
}  // namespace cloudrepro::obs

namespace cloudrepro::shard {

/// `cloudrepro run --shards N`: the in-process sharded driver. Cells are
/// partitioned across N shard workers by `shard_of` (the same deterministic
/// cell key a multi-machine deployment uses), each worker runs its cells
/// through `run_cell_task`, the records merge through a `ShardPlan`, and
/// the merged journal is written into the result store for the ordinary
/// `run_scenario` to replay — which executes zero new measurements and
/// publishes a summary byte-identical to a single-node run.
struct LocalShardOptions {
  /// Shard workers (each its own thread). 1 reproduces the single-node
  /// path through the full shard machinery — the coordinator-overhead
  /// reference point.
  std::size_t shards = 2;
  /// Threads per worker for non-adaptive repetitions within a cell.
  int worker_threads = 1;
  /// Result cache; required (the merged journal lands in its entry).
  scenario::ResultStore* store = nullptr;
  /// Master seed; defaults to the spec's.
  std::optional<std::uint64_t> seed;
  /// Cooperative cancellation; an interrupted run leaves the journal
  /// resumable, like the single-node path.
  const std::atomic<bool>* cancel = nullptr;
  /// shard.* instrumentation sink (optional).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Runs one scenario through the sharded path. Falls back to plain
/// `run_scenario` when the entry already has a summary or another live
/// process holds its lock. Throws std::invalid_argument without a store and
/// ShardMergeError on (impossible under correct operation) record
/// divergence.
scenario::ScenarioRunResult run_scenario_sharded(const scenario::ScenarioSpec& spec,
                                                 const LocalShardOptions& options);

}  // namespace cloudrepro::shard
