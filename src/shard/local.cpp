#include "shard/local.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/journal.h"
#include "io/vfs.h"
#include "obs/metrics.h"
#include "shard/plan.h"
#include "shard/runner.h"

namespace cloudrepro::shard {

scenario::ScenarioRunResult run_scenario_sharded(const scenario::ScenarioSpec& spec,
                                                 const LocalShardOptions& options) {
  if (!options.store) {
    throw std::invalid_argument{"run_scenario_sharded: a result store is required"};
  }
  scenario::ResultStore& store = *options.store;
  const std::uint64_t seed = options.seed.value_or(spec.seed);

  scenario::RunOptions run;
  run.threads = 1;
  run.seed = seed;
  run.store = &store;
  run.metrics = options.metrics;
  run.cancel = options.cancel;

  // Complete entries and lock contention take the ordinary path: the shard
  // machinery only adds value when this process executes the campaign.
  if (store.has_summary(spec, seed)) return scenario::run_scenario(spec, run);
  scenario::EntryLock lock = store.try_lock(spec, seed);
  if (!lock) return scenario::run_scenario(spec, run);

  auto cells = scenario::build_cells(spec);
  const core::CampaignOptions copts = scenario::campaign_options(spec);
  ShardPlan plan{cells, copts, seed};

  io::Vfs& vfs = io::real_vfs();
  std::filesystem::path journal_path = store.prepare(spec, seed);
  try {
    plan.absorb_replay(core::replay_journal(vfs, journal_path, plan.header(),
                                            cells.size(),
                                            copts.repetitions_per_cell));
  } catch (const core::JournalMismatch&) {
    // A journal from a different grid/build: evict and go cold, exactly as
    // run_scenario would.
    lock.release();
    store.evict(spec, seed);
    journal_path = store.prepare(spec, seed);
    lock = store.try_lock(spec, seed);
    if (!lock) return scenario::run_scenario(spec, run);
  }

  const std::string key = store.entry_key(spec, seed);
  const std::size_t shards = std::max<std::size_t>(1, options.shards);

  obs::Counter* c_assigned =
      options.metrics ? &options.metrics->counter("shard.cells_assigned") : nullptr;
  obs::Counter* c_completed =
      options.metrics ? &options.metrics->counter("shard.cells_completed") : nullptr;
  obs::Histogram* h_cell_wall =
      options.metrics ? &options.metrics->histogram("shard.cell_wall_s") : nullptr;
  obs::Histogram* h_straggler =
      options.metrics ? &options.metrics->histogram("shard.straggler_wait_s")
                      : nullptr;

  std::mutex plan_mu;
  std::exception_ptr error;
  std::vector<std::chrono::steady_clock::time_point> finished(shards);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    workers.emplace_back([&, s] {
      try {
        // Each worker materializes its own cells: the callables build all
        // per-repetition state internally, but private copies keep the
        // workers trivially independent (as worker *processes* would be).
        auto worker_cells = scenario::build_cells(spec);
        for (const std::size_t cell : plan.execution_order()) {
          if (shard_of(key, cell, shards) != s) continue;
          CellTask task{cell, {}};
          {
            std::lock_guard<std::mutex> guard{plan_mu};
            if (plan.cell_complete(cell)) continue;
            task.resume_lines = plan.resume_lines(cell);
            if (c_assigned) c_assigned->add();
          }
          const auto t0 = std::chrono::steady_clock::now();
          const CellTaskResult result =
              run_cell_task(worker_cells, copts, seed, task,
                            options.worker_threads, options.cancel);
          const double wall =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
          std::lock_guard<std::mutex> guard{plan_mu};
          plan.push(cell, result.lines);
          if (h_cell_wall) h_cell_wall->observe(wall);
          if (result.complete && c_completed) c_completed->add();
          if (!result.complete) break;  // Cancelled; journal keeps the prefix.
        }
      } catch (...) {
        std::lock_guard<std::mutex> guard{plan_mu};
        if (!error) error = std::current_exception();
      }
      finished[s] = std::chrono::steady_clock::now();
    });
  }
  for (auto& worker : workers) worker.join();
  if (error) std::rethrow_exception(error);

  if (h_straggler) {
    const auto last = *std::max_element(finished.begin(), finished.end());
    for (const auto& t : finished) {
      h_straggler->observe(std::chrono::duration<double>(last - t).count());
    }
  }

  // Persist what the shards produced: the canonical merged journal when
  // complete, else the header plus every known record (any order — replay
  // accepts the set). Then the ordinary runner replays it: zero new
  // measurements, and a summary byte-identical to a single-node run.
  std::string bytes;
  if (plan.complete()) {
    bytes = plan.merge();
  } else {
    bytes = plan.header();
    bytes += '\n';
    for (const std::size_t cell : plan.execution_order()) {
      for (const std::string& line : plan.resume_lines(cell)) {
        bytes += line;
        bytes += '\n';
      }
    }
  }
  {
    auto file = vfs.open_write(journal_path, io::WriteMode::kTruncate);
    file->append(bytes);
    file->sync();
    file->close();
  }
  vfs.sync_dir(journal_path.parent_path());
  // Release before the replay run: run_scenario takes the entry lock
  // itself, and this process already holding it would read as contention.
  lock.release();
  return scenario::run_scenario(spec, run);
}

}  // namespace cloudrepro::shard
