#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace cloudrepro::serve {

/// Incremental decoder for the line-delimited protocol: one frame = one
/// '\n'-terminated line (an optional trailing '\r' is stripped, so a
/// netcat/telnet client works). Bytes arrive from the transport in whatever
/// chunks the wire produced — a frame torn into single bytes, or several
/// frames merged into one read, decode identically.
///
/// Oversize defense: a line longer than `max_frame_bytes` can never become
/// a frame, so the decoder reports kOversize *as soon as* the bound is
/// crossed (not when the newline finally arrives — a hostile client could
/// otherwise grow the buffer without bound) and discards input until the
/// next '\n' to resynchronize. The connection stays usable; the protocol
/// layer answers the oversize frame with an error response.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw transport bytes.
  void push(std::string_view bytes);

  enum class Status {
    kFrame,     ///< `frame` holds one complete line (terminator stripped).
    kNeedMore,  ///< No complete frame buffered; push more bytes.
    kOversize,  ///< Dropped an over-long line; reported once per such line.
  };

  /// Extracts the next event. Call repeatedly until kNeedMore: one push may
  /// complete several frames (pipelined requests).
  Status next(std::string& frame);

  /// Bytes currently buffered (diagnostics / tests).
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool discarding_ = false;  ///< Skipping to the next '\n' after an oversize.
};

}  // namespace cloudrepro::serve
