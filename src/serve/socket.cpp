#include "serve/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace cloudrepro::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}

}  // namespace

SocketTransport::SocketTransport(int fd) : fd_(fd) {
  if (fd_ < 0) throw std::invalid_argument{"SocketTransport: bad fd"};
  set_nonblocking(fd_);
}

SocketTransport::~SocketTransport() { close(); }

IoResult SocketTransport::read(char* buffer, std::size_t max) {
  if (fd_ < 0) return {IoStatus::kClosed, 0};
  if (max == 0) return {IoStatus::kOk, 0};
  const ssize_t n = ::recv(fd_, buffer, max, 0);
  if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (n == 0) return {IoStatus::kClosed, 0};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoStatus::kWouldBlock, 0};
  }
  if (errno == ECONNRESET) return {IoStatus::kClosed, 0};
  return {IoStatus::kError, 0};
}

IoResult SocketTransport::write(std::string_view data) {
  if (fd_ < 0) return {IoStatus::kClosed, 0};
  if (data.empty()) return {IoStatus::kOk, 0};
  // MSG_NOSIGNAL: a peer that closed mid-response must surface as kClosed,
  // not kill the server with SIGPIPE.
  const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
  if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return {IoStatus::kWouldBlock, 0};
  }
  if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
    return {IoStatus::kClosed, 0};
  }
  return {IoStatus::kError, 0};
}

void SocketTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

/// poll(2) timeout for a wait hook: honor the caller's bound, clamped to
/// int milliseconds and floored at 0 (an expired bound polls readiness
/// without blocking).
int poll_timeout_ms(std::chrono::milliseconds max_wait) {
  const auto count = max_wait.count();
  if (count <= 0) return 0;
  if (count > 60'000) return 60'000;
  return static_cast<int>(count);
}

}  // namespace

void SocketTransport::wait_readable(std::chrono::milliseconds max_wait) {
  if (fd_ < 0) return;
  pollfd p{fd_, POLLIN, 0};
  ::poll(&p, 1, poll_timeout_ms(max_wait));
}

void SocketTransport::wait_writable(std::chrono::milliseconds max_wait) {
  if (fd_ < 0) return;
  pollfd p{fd_, POLLOUT, 0};
  ::poll(&p, 1, poll_timeout_ms(max_wait));
}

std::pair<std::string, std::uint16_t> parse_endpoint(const std::string& endpoint) {
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == endpoint.size()) {
    throw std::invalid_argument{"endpoint must be host:port, got \"" + endpoint +
                                "\""};
  }
  const std::string port_text = endpoint.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port > 65535) {
    throw std::invalid_argument{"endpoint port out of range in \"" + endpoint +
                                "\""};
  }
  return {endpoint.substr(0, colon), static_cast<std::uint16_t>(port)};
}

std::unique_ptr<SocketTransport> connect_tcp(const std::string& host,
                                             std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &results);
  if (rc != 0) {
    throw std::runtime_error{"connect: cannot resolve " + host + ": " +
                             ::gai_strerror(rc)};
  }
  int fd = -1;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // Connect while still blocking: a refused/unreachable endpoint fails
    // here with a clean errno; the transport flips to non-blocking after.
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    throw std::runtime_error{"connect: cannot reach " + host + ":" +
                             std::to_string(port)};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<SocketTransport>(fd);
}

SocketServer::SocketServer(ServerCore& core, const std::string& host,
                           std::uint16_t port)
    : core_(core) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0" || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error{"serve: listen host must be an IPv4 address, got \"" +
                             host + "\""};
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: bind " + host + ":" + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: listen");
  }
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }

  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("serve: pipe");
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
}

SocketServer::~SocketServer() {
  core_.set_wake_hook({});
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void SocketServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (drained) or transient error — retry later.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto transport = std::make_unique<SocketTransport>(fd);
    const int conn_fd = transport->fd();
    // The core owns the transport from here; on rejection (table full) it
    // closed the fd already.
    const std::uint64_t id = core_.add_connection(std::move(transport));
    if (id != 0) connection_fds_.emplace(id, conn_fd);
  }
}

void SocketServer::prune_closed() {
  // Connections the core dropped disappear from its interest list; their
  // fds are already closed (the transports own them), so just forget them.
  std::map<std::uint64_t, int> alive;
  for (const auto& interest : core_.interests()) {
    const auto it = connection_fds_.find(interest.id);
    if (it != connection_fds_.end()) alive.emplace(it->first, it->second);
  }
  connection_fds_ = std::move(alive);
}

void SocketServer::run(const std::atomic<bool>& stop) {
  core_.set_wake_hook([fd = wake_pipe_[1]] {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  });

  while (!stop.load(std::memory_order_relaxed)) {
    while (core_.poll_once()) {
    }
    prune_closed();

    std::vector<pollfd> pfds;
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& interest : core_.interests()) {
      const auto it = connection_fds_.find(interest.id);
      if (it == connection_fds_.end()) continue;
      short events = 0;
      if (interest.want_read) events |= POLLIN;
      if (interest.want_write) events |= POLLOUT;
      if (events != 0) pfds.push_back({it->second, events, 0});
    }
    // 100 ms cap bounds stop-flag latency even with no traffic at all.
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);

    if ((pfds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
      }
    }
    if ((pfds[1].revents & POLLIN) != 0) accept_ready();
  }

  // Graceful drain: cancel in-flight campaigns (cooperative — journals are
  // flushed and resumable), deliver their outcomes, flush response bytes.
  core_.begin_shutdown();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (!core_.drained() && std::chrono::steady_clock::now() < deadline) {
    if (!core_.poll_once()) core_.wait_activity(std::chrono::milliseconds{50});
  }
  while (core_.poll_once()) {
  }
  core_.set_wake_hook({});
}

}  // namespace cloudrepro::serve
