#include "serve/client.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cloudrepro::serve {

namespace {

/// Time left until `deadline`, rounded up so a sub-millisecond remainder
/// still parks instead of spinning. Callers check expiry before waiting.
std::chrono::milliseconds remaining(
    std::chrono::steady_clock::time_point deadline) {
  return std::max(std::chrono::milliseconds{1},
                  std::chrono::ceil<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now()));
}

}  // namespace

FetchClient::FetchClient(std::unique_ptr<Transport> transport, Options options)
    : transport_(std::move(transport)),
      decoder_(options.max_frame_bytes),
      options_(options) {
  if (!transport_) throw std::invalid_argument{"FetchClient: null transport"};
}

Response FetchClient::get(const scenario::ScenarioSpec& spec,
                          std::optional<std::uint64_t> seed) {
  return request(get_request_frame(spec, seed));
}

Response FetchClient::get_by_name(std::string_view name,
                                  std::optional<std::uint64_t> seed) {
  return request(get_request_frame_by_name(name, seed));
}

Response FetchClient::get_by_hash(std::string_view hash, std::uint64_t seed) {
  return request(get_request_frame_by_hash(hash, seed));
}

Response FetchClient::list() { return request(list_request_frame()); }

Response FetchClient::stats() { return request(stats_request_frame()); }

Response FetchClient::request(const std::string& frame) {
  const Deadline deadline = std::chrono::steady_clock::now() + options_.timeout;
  write_all(frame + "\n", deadline);
  return parse_response(read_frame(deadline));
}

void FetchClient::write_all(std::string_view data, Deadline deadline) {
  while (!data.empty()) {
    const IoResult result = transport_->write(data);
    switch (result.status) {
      case IoStatus::kOk:
        data.remove_prefix(result.bytes);
        break;
      case IoStatus::kWouldBlock:
        if (std::chrono::steady_clock::now() >= deadline) {
          throw FetchTimeout{"fetch: timed out sending request"};
        }
        transport_->wait_writable(remaining(deadline));
        break;
      case IoStatus::kClosed:
      case IoStatus::kError:
        throw std::runtime_error{"fetch: connection lost while sending request"};
    }
  }
}

std::string FetchClient::read_frame(Deadline deadline) {
  std::string frame;
  for (;;) {
    switch (decoder_.next(frame)) {
      case FrameDecoder::Status::kFrame:
        return frame;
      case FrameDecoder::Status::kOversize:
        throw ProtocolError{"oversize",
                            "response frame exceeds the client frame bound"};
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    char buffer[16 * 1024];
    const IoResult result = transport_->read(buffer, sizeof buffer);
    switch (result.status) {
      case IoStatus::kOk:
        decoder_.push({buffer, result.bytes});
        break;
      case IoStatus::kWouldBlock:
        if (std::chrono::steady_clock::now() >= deadline) {
          throw FetchTimeout{"fetch: timed out waiting for response"};
        }
        transport_->wait_readable(remaining(deadline));
        break;
      case IoStatus::kClosed:
        throw std::runtime_error{
            "fetch: server closed the connection before replying"};
      case IoStatus::kError:
        throw std::runtime_error{"fetch: transport error while reading response"};
    }
  }
}

}  // namespace cloudrepro::serve
