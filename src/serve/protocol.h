#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "scenario/spec.h"

namespace cloudrepro::serve {

/// Version of the serve wire protocol. A server answers requests carrying
/// no `protocol` field or the current value; anything else is rejected, so
/// an old client fails loudly instead of misparsing.
inline constexpr int kProtocolVersion = 1;

/// A request frame failed to parse or failed validation. The message is
/// safe to echo back to the client (it names fields, never file paths).
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  /// Stable machine-readable discriminator ("bad_json", "bad_field", ...).
  const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// One decoded client request. The GET key is the paper-facing triple
/// (content hash, seed, schema version): the scenario may arrive as an
/// inline spec (hash derived), a registry name (hash of the named spec), or
/// a bare content hash (resolved against the server's registry index).
struct Request {
  enum class Op { kGet, kList, kStats };
  Op op = Op::kGet;

  // GET addressing — exactly one of these three is set.
  std::optional<scenario::ScenarioSpec> spec;  ///< Inline spec document.
  std::string scenario_name;                   ///< Registry name.
  std::string hash;                            ///< 64-hex content hash.

  /// Defaults to the resolved spec's own seed when absent.
  std::optional<std::uint64_t> seed;
  /// When present must equal scenario::kResultSchemaVersion — a client
  /// built against other measurement semantics must not be served bytes it
  /// cannot reproduce.
  std::optional<int> schema_version;
};

/// Parses one request frame (a line of JSON). Throws ProtocolError.
Request parse_request(std::string_view frame);

/// Response builders. Every response is one line of canonical JSON with an
/// "ok" discriminator; the GET success payload embeds the summary document
/// verbatim-by-value (canonical JSON round-trips bit-exactly, which is what
/// keeps a fetched summary byte-identical to `cloudrepro run` output).
std::string error_response(std::string_view code, std::string_view message);
/// `hit` is the server-side disposition: "hit" (served from cache),
/// "miss" / "partial" (campaign executed by this request), "coalesced"
/// (shared another request's in-flight execution), "peer" (read through a
/// peer cache).
std::string get_response(const std::string& hash, std::uint64_t seed,
                         std::string_view hit, const std::string& summary_json);

/// Client-side: parses a response line; throws ProtocolError on frames that
/// are not a valid response document.
struct Response {
  bool ok = false;
  std::string error_code;     ///< Set when !ok.
  std::string error_message;  ///< Set when !ok.
  std::string hash;           ///< GET only.
  std::uint64_t seed = 0;     ///< GET only.
  std::string hit;            ///< GET only.
  std::string summary;        ///< GET only: canonical summary bytes.
  std::string body;           ///< LIST/STATS: the whole canonical document.
};
Response parse_response(std::string_view frame);

/// Canonical request frames (no trailing newline), used by the client and
/// by tests.
std::string get_request_frame(const scenario::ScenarioSpec& spec,
                              std::optional<std::uint64_t> seed);
std::string get_request_frame_by_name(std::string_view name,
                                      std::optional<std::uint64_t> seed);
std::string get_request_frame_by_hash(std::string_view hash,
                                      std::uint64_t seed);
std::string list_request_frame();
std::string stats_request_frame();

}  // namespace cloudrepro::serve
