#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.h"

namespace cloudrepro::serve {

/// Version of the serve wire protocol. A server answers requests carrying
/// no `protocol` field or the current value; anything else is rejected, so
/// an old client fails loudly instead of misparsing.
inline constexpr int kProtocolVersion = 1;

/// A request frame failed to parse or failed validation. The message is
/// safe to echo back to the client (it names fields, never file paths).
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  /// Stable machine-readable discriminator ("bad_json", "bad_field", ...).
  const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// One decoded client request. The GET key is the paper-facing triple
/// (content hash, seed, schema version): the scenario may arrive as an
/// inline spec (hash derived), a registry name (hash of the named spec), or
/// a bare content hash (resolved against the server's registry index).
struct Request {
  enum class Op { kGet, kList, kStats, kShardPlan, kShardPull, kShardPush };
  Op op = Op::kGet;

  // GET / SHARD_PLAN addressing — exactly one of these three is set.
  std::optional<scenario::ScenarioSpec> spec;  ///< Inline spec document.
  std::string scenario_name;                   ///< Registry name.
  std::string hash;                            ///< 64-hex content hash.

  /// Defaults to the resolved spec's own seed when absent.
  std::optional<std::uint64_t> seed;
  /// When present must equal scenario::kResultSchemaVersion — a client
  /// built against other measurement semantics must not be served bytes it
  /// cannot reproduce.
  std::optional<int> schema_version;

  // SHARD_PULL / SHARD_PUSH fields.
  std::string worker;                ///< Worker name (liveness attribution).
  std::string key;                   ///< Session key (opaque to workers).
  std::size_t cell = 0;              ///< SHARD_PUSH: cell the records are for.
  std::vector<std::string> records;  ///< SHARD_PUSH: journal record lines.
  bool done = false;                 ///< SHARD_PUSH: worker claims the cell
                                     ///< reached its stop point.
  double wall_s = 0.0;               ///< SHARD_PUSH: cell wall time (metrics).
};

/// Parses one request frame (a line of JSON). Throws ProtocolError.
Request parse_request(std::string_view frame);

/// Response builders. Every response is one line of canonical JSON with an
/// "ok" discriminator; the GET success payload embeds the summary document
/// verbatim-by-value (canonical JSON round-trips bit-exactly, which is what
/// keeps a fetched summary byte-identical to `cloudrepro run` output).
std::string error_response(std::string_view code, std::string_view message);
/// `hit` is the server-side disposition: "hit" (served from cache),
/// "miss" / "partial" (campaign executed by this request), "coalesced"
/// (shared another request's in-flight execution), "peer" (read through a
/// peer cache).
std::string get_response(const std::string& hash, std::uint64_t seed,
                         std::string_view hit, const std::string& summary_json);

/// Client-side: parses a response line; throws ProtocolError on frames that
/// are not a valid response document.
struct Response {
  bool ok = false;
  std::string error_code;     ///< Set when !ok.
  std::string error_message;  ///< Set when !ok.
  std::string hash;           ///< GET only.
  std::uint64_t seed = 0;     ///< GET only.
  std::string hit;            ///< GET only.
  std::string summary;        ///< GET only: canonical summary bytes.
  std::string body;           ///< LIST/STATS: the whole canonical document.
};
Response parse_response(std::string_view frame);

// --- Shard coordination (SHARD_PLAN / SHARD_PULL / SHARD_PUSH) -----------
// SHARD_PLAN reports a campaign's sharding state (observability and test
// introspection; campaigns start via GET so single-flight stays the only
// admission path). SHARD_PULL registers the connection as a worker and
// claims the next unassigned cell; SHARD_PUSH streams a cell's journal
// records back. Workers never see the registry or the store — assignments
// ship the spec inline and records are opaque journal lines.

/// Server-side state of one distributed campaign, as reported by
/// SHARD_PLAN and parsed from its response.
struct ShardPlanInfo {
  std::string key;
  /// "complete" (summary published), "running" (session open), or "idle"
  /// (no session; a GET would open one while workers are connected).
  std::string state;
  std::size_t cells = 0;
  std::size_t completed = 0;
  std::size_t pending = 0;   ///< Unassigned cells (running sessions).
  std::size_t assigned = 0;  ///< Cells currently out with workers.
  std::size_t workers = 0;   ///< Worker connections registered.
};
std::string shard_plan_response(const ShardPlanInfo& info);
ShardPlanInfo parse_shard_plan_response(std::string_view frame);

/// One SHARD_PULL outcome: an assignment, or idle (retry later).
struct ShardAssignment {
  bool idle = true;
  int retry_ms = 100;                          ///< Meaningful when idle.
  std::string key;                             ///< Session key; echo in PUSH.
  std::size_t cell = 0;
  std::uint64_t seed = 0;
  std::optional<scenario::ScenarioSpec> spec;  ///< Inline spec.
  std::vector<std::string> resume;             ///< Known record lines.
};
std::string shard_idle_response(int retry_ms);
std::string shard_assignment_response(const std::string& key, std::size_t cell,
                                      const scenario::ScenarioSpec& spec,
                                      std::uint64_t seed,
                                      const std::vector<std::string>& resume);
ShardAssignment parse_shard_pull_response(std::string_view frame);

/// SHARD_PUSH acknowledgement: the plan's ingestion outcome.
struct ShardPushAck {
  std::size_t accepted = 0;
  std::size_t duplicates = 0;
  std::size_t dropped = 0;
  bool cell_complete = false;
  bool campaign_complete = false;
};
std::string shard_push_response(const ShardPushAck& ack);
ShardPushAck parse_shard_push_response(std::string_view frame);

/// Canonical request frames (no trailing newline), used by the client and
/// by tests.
std::string get_request_frame(const scenario::ScenarioSpec& spec,
                              std::optional<std::uint64_t> seed);
std::string get_request_frame_by_name(std::string_view name,
                                      std::optional<std::uint64_t> seed);
std::string get_request_frame_by_hash(std::string_view hash,
                                      std::uint64_t seed);
std::string list_request_frame();
std::string stats_request_frame();
std::string shard_plan_request_frame_by_name(std::string_view name,
                                             std::optional<std::uint64_t> seed);
std::string shard_pull_request_frame(std::string_view worker);
std::string shard_push_request_frame(std::string_view worker,
                                     const std::string& key, std::size_t cell,
                                     const std::vector<std::string>& records,
                                     bool done, double wall_s);

}  // namespace cloudrepro::serve
