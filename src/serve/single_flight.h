#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cloudrepro::serve {

/// Outcome of one campaign execution, shared verbatim by every request that
/// coalesced onto it.
struct FlightOutcome {
  bool ok = false;
  std::string summary;        ///< Canonical summary bytes (ok only).
  std::string hit;            ///< Leader's disposition: miss/partial/peer/hit.
  std::string error_code;     ///< !ok only.
  std::string error_message;  ///< !ok only.
};

/// In-process single-flight table keyed by the cache entry key
/// (<hash>-s<seed>-v<version>): the thundering-herd collapse the ROADMAP
/// asks for. The first request for a key becomes the *leader* — it alone
/// executes the campaign — and every request arriving while the flight is
/// open registers a callback and shares the leader's outcome byte-for-byte.
///
/// This sits *above* the ResultStore's cross-process lock-file protocol:
/// the lock file serializes executors across processes, the flight table
/// collapses requests within this server, so N concurrent GETs cost one
/// campaign and zero lock-wait polling for the N-1 followers.
///
/// Callbacks run on the completing thread (the executor worker), outside
/// the table mutex; a callback registered after completion would be a bug
/// in the caller (flights are removed on completion while still holding
/// the admission order), which the join/complete contract makes impossible.
class SingleFlight {
 public:
  /// `leader` is true for the callback whose join opened the flight — told
  /// by the table (the first registered callback) rather than by a flag the
  /// caller would have to publish after join() returns, which would race
  /// with an immediate completion on another thread.
  using Callback = std::function<void(const FlightOutcome&, bool leader)>;

  /// Joins the flight for `key`. Returns true when the caller became the
  /// leader: it MUST eventually call `complete(key, ...)` exactly once
  /// (its own callback fires through `complete` like everyone else's).
  bool join(const std::string& key, Callback callback);

  /// Publishes the outcome: removes the flight and invokes every joined
  /// callback, in join order, outside the lock.
  void complete(const std::string& key, const FlightOutcome& outcome);

  /// Open flights (gauge fodder).
  std::size_t open_flights() const;

 private:
  struct Flight {
    std::vector<Callback> callbacks;  ///< Join order.
  };

  mutable std::mutex mu_;
  std::map<std::string, Flight> flights_;
};

}  // namespace cloudrepro::serve
