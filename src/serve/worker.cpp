#include "serve/worker.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "scenario/runner.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "shard/runner.h"

namespace cloudrepro::serve {

namespace {

/// Per-session worker context: cells materialized once from the inline spec
/// and reused across this session's assignments. Cells are stateless between
/// repetitions (each run_once builds everything from its repetition RNG), so
/// reuse never leaks state across assignments.
struct SessionContext {
  std::vector<core::CampaignCell> cells;
  core::CampaignOptions options;
};

void emit(const WorkerOptions& options, const std::string& line) {
  if (options.on_event) options.on_event(line);
}

bool cancelled(const WorkerOptions& options) {
  return options.cancel && options.cancel->load(std::memory_order_relaxed);
}

}  // namespace

WorkerStats run_worker(std::unique_ptr<Transport> transport,
                       const WorkerOptions& options) {
  FetchClient client{std::move(transport)};
  WorkerStats stats;
  std::map<std::string, SessionContext> sessions;
  int consecutive_idle = 0;

  while (!cancelled(options)) {
    Response pull = client.request(shard_pull_request_frame(options.name));
    if (!pull.ok) {
      if (pull.error_code == "shutting_down") {
        emit(options, "coordinator shutting down");
        break;
      }
      throw std::runtime_error{"SHARD_PULL rejected (" + pull.error_code +
                               "): " + pull.error_message};
    }
    const ShardAssignment assignment = parse_shard_pull_response(pull.body);
    if (assignment.idle) {
      ++stats.idle_polls;
      ++consecutive_idle;
      if (options.max_idle_polls > 0 &&
          consecutive_idle >= options.max_idle_polls) {
        emit(options, "idle poll budget exhausted");
        break;
      }
      const int sleep_ms = std::max(options.idle_sleep_ms,
                                    std::max(assignment.retry_ms, 1));
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      continue;
    }
    consecutive_idle = 0;

    auto context = sessions.find(assignment.key);
    if (context == sessions.end()) {
      SessionContext fresh;
      fresh.cells = scenario::build_cells(*assignment.spec);
      fresh.options = scenario::campaign_options(*assignment.spec);
      context = sessions.emplace(assignment.key, std::move(fresh)).first;
    }
    emit(options, "assigned cell " + std::to_string(assignment.cell) + " (" +
                      std::to_string(assignment.resume.size()) +
                      " resume lines)");

    shard::CellTask task;
    task.cell = assignment.cell;
    task.resume_lines = assignment.resume;
    const auto started = std::chrono::steady_clock::now();
    const shard::CellTaskResult result =
        shard::run_cell_task(context->second.cells, context->second.options,
                             assignment.seed, task, options.threads,
                             options.cancel);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();

    Response push = client.request(
        shard_push_request_frame(options.name, assignment.key, assignment.cell,
                                 result.lines, result.complete, wall_s));
    if (!push.ok) {
      if (push.error_code == "unknown_session") {
        // The coordinator finalized or abandoned this campaign while we were
        // measuring — normal when another worker pushed the last cell. Our
        // records are reproducible, so dropping them loses nothing.
        sessions.erase(assignment.key);
        emit(options, "session gone; dropping cell " +
                          std::to_string(assignment.cell));
        continue;
      }
      if (push.error_code == "shutting_down") {
        emit(options, "coordinator shutting down");
        break;
      }
      throw std::runtime_error{"SHARD_PUSH rejected (" + push.error_code +
                               "): " + push.error_message};
    }
    const ShardPushAck ack = parse_shard_push_response(push.body);
    stats.records_pushed += ack.accepted;
    if (result.complete) {
      ++stats.cells_completed;
    } else {
      ++stats.cells_partial;
    }
    emit(options, "pushed cell " + std::to_string(assignment.cell) + ": " +
                      std::to_string(ack.accepted) + " accepted, " +
                      std::to_string(ack.duplicates) + " duplicate" +
                      (ack.campaign_complete ? ", campaign complete" : ""));
    if (ack.campaign_complete) sessions.erase(assignment.key);
    if (!result.complete) break;  // Cancelled mid-cell; partial was pushed.
  }
  return stats;
}

}  // namespace cloudrepro::serve
