#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace cloudrepro::serve {

/// Outcome of one non-blocking transport operation.
enum class IoStatus {
  kOk,          ///< Some bytes moved (see IoResult::bytes; may be partial).
  kWouldBlock,  ///< Nothing to read / no buffer space; retry after readiness.
  kClosed,      ///< Peer closed cleanly; no more bytes will ever move.
  kError,       ///< Transport-level failure; the connection is dead.
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;  ///< Meaningful only when status == kOk.
};

/// Byte-stream seam between the protocol engine and the wire.
///
/// This is what makes the serve state machines testable without sockets:
/// the reactor and every connection state machine see only this interface,
/// so the same code runs over a real non-blocking TCP socket in production
/// and over a deterministic in-memory pipe in ctest — where partial reads,
/// torn frames, and slow-client backpressure are induced exactly, not
/// raced for. The contract is non-blocking POSIX semantics:
///
///  - `read` moves up to `max` bytes and reports kWouldBlock when no data
///    is available *yet* (kClosed once the peer is gone and the pipe is
///    drained);
///  - `write` may accept any prefix of `data` (partial write) and reports
///    kWouldBlock when the outbound buffer is full — the slow-client
///    signal the per-connection write budget turns into backpressure;
///  - both are safe to call again after kWouldBlock.
///
/// The wait hooks block until the next read/write could make progress;
/// reactors never call them (they poll), but the blocking `FetchClient`
/// does, and the in-memory implementation backs them with condvars so
/// client threads in tests park instead of spinning.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual IoResult read(char* buffer, std::size_t max) = 0;
  virtual IoResult write(std::string_view data) = 0;
  /// Idempotent; after close, reads on the peer drain then report kClosed.
  virtual void close() = 0;

  /// Block until the next read/write could make progress, or `max_wait`
  /// elapses — whichever comes first. May return spuriously; callers loop,
  /// retry the operation, and re-check their own deadline. The bound is
  /// what keeps a blocking client's deadline live against a peer that
  /// accepted the connection and then never delivers a byte.
  virtual void wait_readable(
      std::chrono::milliseconds max_wait = std::chrono::milliseconds{100}) = 0;
  virtual void wait_writable(
      std::chrono::milliseconds max_wait = std::chrono::milliseconds{100}) = 0;
};

/// One direction of an in-memory pipe: a bounded byte queue. Thread-safe so
/// hammer tests can drive client endpoints from many threads while the
/// reactor thread polls the server endpoints.
class PipeBuffer {
 public:
  explicit PipeBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Accepts up to the free capacity; returns bytes taken (0 = would block).
  std::size_t push(std::string_view data);
  /// Moves up to `max` bytes out; closed_and_empty reports end-of-stream.
  std::size_t pop(char* out, std::size_t max);
  void close();

  bool is_closed();
  bool closed_and_empty();
  bool readable();   ///< Data available or closed (read would not block).
  bool writable();   ///< Free space or closed (write would not block forever).
  void wait_readable(
      std::chrono::milliseconds max_wait = std::chrono::milliseconds{100});
  void wait_writable(
      std::chrono::milliseconds max_wait = std::chrono::milliseconds{100});

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string data_;
  std::size_t capacity_;
  bool closed_ = false;
};

struct MemoryPipeOptions {
  /// Byte capacity of each direction. Small capacities model slow clients:
  /// the server's write hits kWouldBlock until the client drains.
  std::size_t capacity = 64 * 1024;
  /// Upper bound on bytes returned by a single `read` (0 = no bound).
  /// Forcing 1 makes every frame arrive torn into single bytes — the
  /// deterministic partial-read regime the framing tests run in.
  std::size_t max_read_chunk = 0;
};

/// In-memory Transport endpoint over two shared PipeBuffers.
class MemoryTransport : public Transport {
 public:
  MemoryTransport(std::shared_ptr<PipeBuffer> in, std::shared_ptr<PipeBuffer> out,
                  std::size_t max_read_chunk)
      : in_(std::move(in)), out_(std::move(out)), max_read_chunk_(max_read_chunk) {}

  IoResult read(char* buffer, std::size_t max) override;
  IoResult write(std::string_view data) override;
  void close() override;
  void wait_readable(std::chrono::milliseconds max_wait =
                         std::chrono::milliseconds{100}) override {
    in_->wait_readable(max_wait);
  }
  void wait_writable(std::chrono::milliseconds max_wait =
                         std::chrono::milliseconds{100}) override {
    out_->wait_writable(max_wait);
  }

 private:
  std::shared_ptr<PipeBuffer> in_;
  std::shared_ptr<PipeBuffer> out_;
  std::size_t max_read_chunk_;
};

/// A connected pair of in-memory endpoints: writes on `first` are reads on
/// `second` and vice versa. Deterministic: byte order is FIFO per
/// direction, chunk boundaries are exactly what the options induce.
std::pair<std::unique_ptr<MemoryTransport>, std::unique_ptr<MemoryTransport>>
make_memory_pair(const MemoryPipeOptions& options = {});

}  // namespace cloudrepro::serve
