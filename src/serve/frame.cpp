#include "serve/frame.h"

namespace cloudrepro::serve {

void FrameDecoder::push(std::string_view bytes) { buffer_.append(bytes); }

FrameDecoder::Status FrameDecoder::next(std::string& frame) {
  for (;;) {
    if (discarding_) {
      // Resynchronize after an oversize line (already reported): drop
      // everything up to and including the next '\n'.
      const auto nl = buffer_.find('\n');
      if (nl == std::string::npos) {
        buffer_.clear();
        return Status::kNeedMore;
      }
      buffer_.erase(0, nl + 1);
      discarding_ = false;
      continue;
    }

    const auto nl = buffer_.find('\n');
    if (nl == std::string::npos) {
      if (buffer_.size() > max_frame_bytes_) {
        // The line already exceeds the bound with no terminator in sight:
        // cap memory now and skip the rest of the line as it trickles in.
        buffer_.clear();
        discarding_ = true;
        return Status::kOversize;
      }
      return Status::kNeedMore;
    }
    if (nl > max_frame_bytes_) {
      // Terminator arrived in the same push that overflowed the bound.
      buffer_.erase(0, nl + 1);
      return Status::kOversize;
    }
    frame.assign(buffer_, 0, nl);
    buffer_.erase(0, nl + 1);
    if (!frame.empty() && frame.back() == '\r') frame.pop_back();
    return Status::kFrame;
  }
}

}  // namespace cloudrepro::serve
