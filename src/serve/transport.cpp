#include "serve/transport.h"

#include <algorithm>
#include <cstring>

namespace cloudrepro::serve {

std::size_t PipeBuffer::push(std::string_view data) {
  std::lock_guard<std::mutex> lock{mu_};
  if (closed_) return 0;  // Caller maps this to kClosed via closed check.
  const std::size_t free = capacity_ > data_.size() ? capacity_ - data_.size() : 0;
  const std::size_t take = std::min(free, data.size());
  if (take == 0) return 0;
  data_.append(data.data(), take);
  cv_.notify_all();
  return take;
}

std::size_t PipeBuffer::pop(char* out, std::size_t max) {
  std::lock_guard<std::mutex> lock{mu_};
  const std::size_t take = std::min(max, data_.size());
  if (take > 0) {
    std::memcpy(out, data_.data(), take);
    data_.erase(0, take);
    cv_.notify_all();
  }
  return take;
}

void PipeBuffer::close() {
  std::lock_guard<std::mutex> lock{mu_};
  closed_ = true;
  cv_.notify_all();
}

bool PipeBuffer::is_closed() {
  std::lock_guard<std::mutex> lock{mu_};
  return closed_;
}

bool PipeBuffer::closed_and_empty() {
  std::lock_guard<std::mutex> lock{mu_};
  return closed_ && data_.empty();
}

bool PipeBuffer::readable() {
  std::lock_guard<std::mutex> lock{mu_};
  return !data_.empty() || closed_;
}

bool PipeBuffer::writable() {
  std::lock_guard<std::mutex> lock{mu_};
  return data_.size() < capacity_ || closed_;
}

void PipeBuffer::wait_readable(std::chrono::milliseconds max_wait) {
  std::unique_lock<std::mutex> lock{mu_};
  cv_.wait_for(lock, max_wait, [this] { return !data_.empty() || closed_; });
}

void PipeBuffer::wait_writable(std::chrono::milliseconds max_wait) {
  std::unique_lock<std::mutex> lock{mu_};
  cv_.wait_for(lock, max_wait,
               [this] { return data_.size() < capacity_ || closed_; });
}

IoResult MemoryTransport::read(char* buffer, std::size_t max) {
  if (max_read_chunk_ > 0) max = std::min(max, max_read_chunk_);
  const std::size_t got = in_->pop(buffer, max);
  if (got > 0) return {IoStatus::kOk, got};
  if (in_->closed_and_empty()) return {IoStatus::kClosed, 0};
  return {IoStatus::kWouldBlock, 0};
}

IoResult MemoryTransport::write(std::string_view data) {
  if (data.empty()) return {IoStatus::kOk, 0};
  const std::size_t took = out_->push(data);
  if (took > 0) return {IoStatus::kOk, took};
  // push refuses for two reasons: the pipe is closed (peer gone) or full.
  if (out_->is_closed()) return {IoStatus::kClosed, 0};
  return {IoStatus::kWouldBlock, 0};
}

void MemoryTransport::close() {
  in_->close();
  out_->close();
}

std::pair<std::unique_ptr<MemoryTransport>, std::unique_ptr<MemoryTransport>>
make_memory_pair(const MemoryPipeOptions& options) {
  auto a_to_b = std::make_shared<PipeBuffer>(options.capacity);
  auto b_to_a = std::make_shared<PipeBuffer>(options.capacity);
  auto first = std::make_unique<MemoryTransport>(b_to_a, a_to_b,
                                                 options.max_read_chunk);
  auto second = std::make_unique<MemoryTransport>(a_to_b, b_to_a,
                                                  options.max_read_chunk);
  return {std::move(first), std::move(second)};
}

}  // namespace cloudrepro::serve
