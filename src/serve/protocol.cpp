#include "serve/protocol.h"

#include <cctype>
#include <utility>

#include "scenario/json.h"
#include "scenario/result_store.h"

namespace cloudrepro::serve {

namespace {

using scenario::Json;
using scenario::JsonError;
using scenario::JsonObject;

bool is_content_hash(std::string_view text) {
  if (text.size() != 64) return false;
  for (const char c : text) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Json parse_frame_json(std::string_view frame) {
  try {
    return Json::parse(frame);
  } catch (const JsonError& error) {
    throw ProtocolError{"bad_json", std::string{"frame is not JSON: "} + error.what()};
  }
}

}  // namespace

Request parse_request(std::string_view frame) {
  const Json doc = parse_frame_json(frame);
  if (!doc.is_object()) {
    throw ProtocolError{"bad_json", "request must be a JSON object"};
  }

  if (const Json* protocol = doc.find("protocol")) {
    if (!protocol->is_number() || protocol->as_int() != kProtocolVersion) {
      throw ProtocolError{"protocol",
                          "unsupported protocol version (server speaks " +
                              std::to_string(kProtocolVersion) + ")"};
    }
  }

  const Json* op = doc.find("op");
  if (!op || !op->is_string()) {
    throw ProtocolError{"bad_field", "missing string field \"op\""};
  }

  Request request;
  const std::string& op_name = op->as_string();
  if (op_name == "GET") {
    request.op = Request::Op::kGet;
  } else if (op_name == "LIST") {
    request.op = Request::Op::kList;
  } else if (op_name == "STATS") {
    request.op = Request::Op::kStats;
  } else {
    throw ProtocolError{"bad_op", "unknown op \"" + op_name + "\""};
  }

  // Shared optional fields.
  if (const Json* seed = doc.find("seed")) {
    try {
      request.seed = seed->as_uint();
    } catch (const JsonError&) {
      throw ProtocolError{"bad_field", "\"seed\" must be a non-negative integer"};
    }
  }
  if (const Json* schema = doc.find("schema_version")) {
    try {
      request.schema_version = static_cast<int>(schema->as_int());
    } catch (const JsonError&) {
      throw ProtocolError{"bad_field", "\"schema_version\" must be an integer"};
    }
  }

  if (request.op != Request::Op::kGet) return request;

  int addresses = 0;
  if (const Json* spec = doc.find("spec")) {
    ++addresses;
    try {
      request.spec = scenario::ScenarioSpec::from_json(*spec);
    } catch (const JsonError& error) {
      throw ProtocolError{"bad_spec", std::string{"inline spec rejected: "} + error.what()};
    }
  }
  if (const Json* name = doc.find("scenario")) {
    ++addresses;
    if (!name->is_string() || name->as_string().empty()) {
      throw ProtocolError{"bad_field", "\"scenario\" must be a non-empty string"};
    }
    request.scenario_name = name->as_string();
  }
  if (const Json* hash = doc.find("hash")) {
    ++addresses;
    if (!hash->is_string() || !is_content_hash(hash->as_string())) {
      throw ProtocolError{"bad_field", "\"hash\" must be a 64-hex content hash"};
    }
    request.hash = hash->as_string();
  }
  if (addresses != 1) {
    throw ProtocolError{"bad_field",
                        "GET needs exactly one of \"spec\", \"scenario\", \"hash\""};
  }
  if (request.schema_version &&
      *request.schema_version != scenario::kResultSchemaVersion) {
    throw ProtocolError{"schema",
                        "result schema version mismatch (server serves v" +
                            std::to_string(scenario::kResultSchemaVersion) + ")"};
  }
  return request;
}

std::string error_response(std::string_view code, std::string_view message) {
  JsonObject error;
  error["code"] = Json{std::string{code}};
  error["message"] = Json{std::string{message}};
  JsonObject root;
  root["error"] = Json{std::move(error)};
  root["ok"] = Json{false};
  return Json{std::move(root)}.canonical();
}

std::string get_response(const std::string& hash, std::uint64_t seed,
                         std::string_view hit, const std::string& summary_json) {
  JsonObject root;
  root["hash"] = Json{hash};
  root["hit"] = Json{std::string{hit}};
  root["ok"] = Json{true};
  root["seed"] = Json{seed};
  // Parse-then-embed: the summary is canonical JSON, and canonical JSON
  // round-trips bit-exactly (pinned by the scenario JSON tests), so the
  // sub-document's bytes inside this response equal the stored summary.
  root["summary"] = Json::parse(summary_json);
  return Json{std::move(root)}.canonical();
}

Response parse_response(std::string_view frame) {
  const Json doc = parse_frame_json(frame);
  if (!doc.is_object()) {
    throw ProtocolError{"bad_json", "response must be a JSON object"};
  }
  const Json* ok = doc.find("ok");
  if (!ok || !ok->is_bool()) {
    throw ProtocolError{"bad_field", "response missing bool field \"ok\""};
  }

  Response response;
  response.ok = ok->as_bool();
  if (!response.ok) {
    const Json* error = doc.find("error");
    if (!error || !error->is_object()) {
      throw ProtocolError{"bad_field", "error response missing \"error\" object"};
    }
    if (const Json* code = error->find("code"); code && code->is_string()) {
      response.error_code = code->as_string();
    }
    if (const Json* message = error->find("message");
        message && message->is_string()) {
      response.error_message = message->as_string();
    }
    return response;
  }
  if (const Json* summary = doc.find("summary")) {
    response.summary = summary->canonical();
    if (const Json* hash = doc.find("hash"); hash && hash->is_string()) {
      response.hash = hash->as_string();
    }
    if (const Json* seed = doc.find("seed"); seed && seed->is_number()) {
      response.seed = seed->as_uint();
    }
    if (const Json* hit = doc.find("hit"); hit && hit->is_string()) {
      response.hit = hit->as_string();
    }
  } else {
    response.body = doc.canonical();
  }
  return response;
}

std::string get_request_frame(const scenario::ScenarioSpec& spec,
                              std::optional<std::uint64_t> seed) {
  JsonObject root;
  root["op"] = Json{"GET"};
  root["protocol"] = Json{kProtocolVersion};
  root["schema_version"] = Json{scenario::kResultSchemaVersion};
  if (seed) root["seed"] = Json{*seed};
  root["spec"] = spec.to_json();
  return Json{std::move(root)}.canonical();
}

std::string get_request_frame_by_name(std::string_view name,
                                      std::optional<std::uint64_t> seed) {
  JsonObject root;
  root["op"] = Json{"GET"};
  root["protocol"] = Json{kProtocolVersion};
  root["scenario"] = Json{std::string{name}};
  root["schema_version"] = Json{scenario::kResultSchemaVersion};
  if (seed) root["seed"] = Json{*seed};
  return Json{std::move(root)}.canonical();
}

std::string get_request_frame_by_hash(std::string_view hash, std::uint64_t seed) {
  JsonObject root;
  root["hash"] = Json{std::string{hash}};
  root["op"] = Json{"GET"};
  root["protocol"] = Json{kProtocolVersion};
  root["schema_version"] = Json{scenario::kResultSchemaVersion};
  root["seed"] = Json{seed};
  return Json{std::move(root)}.canonical();
}

std::string list_request_frame() {
  JsonObject root;
  root["op"] = Json{"LIST"};
  root["protocol"] = Json{kProtocolVersion};
  return Json{std::move(root)}.canonical();
}

std::string stats_request_frame() {
  JsonObject root;
  root["op"] = Json{"STATS"};
  root["protocol"] = Json{kProtocolVersion};
  return Json{std::move(root)}.canonical();
}

}  // namespace cloudrepro::serve
