#include "serve/protocol.h"

#include <cctype>
#include <utility>

#include "scenario/json.h"
#include "scenario/result_store.h"

namespace cloudrepro::serve {

namespace {

using scenario::Json;
using scenario::JsonError;
using scenario::JsonObject;

bool is_content_hash(std::string_view text) {
  if (text.size() != 64) return false;
  for (const char c : text) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Json parse_frame_json(std::string_view frame) {
  try {
    return Json::parse(frame);
  } catch (const JsonError& error) {
    throw ProtocolError{"bad_json", std::string{"frame is not JSON: "} + error.what()};
  }
}

}  // namespace

Request parse_request(std::string_view frame) {
  const Json doc = parse_frame_json(frame);
  if (!doc.is_object()) {
    throw ProtocolError{"bad_json", "request must be a JSON object"};
  }

  if (const Json* protocol = doc.find("protocol")) {
    if (!protocol->is_number() || protocol->as_int() != kProtocolVersion) {
      throw ProtocolError{"protocol",
                          "unsupported protocol version (server speaks " +
                              std::to_string(kProtocolVersion) + ")"};
    }
  }

  const Json* op = doc.find("op");
  if (!op || !op->is_string()) {
    throw ProtocolError{"bad_field", "missing string field \"op\""};
  }

  Request request;
  const std::string& op_name = op->as_string();
  if (op_name == "GET") {
    request.op = Request::Op::kGet;
  } else if (op_name == "LIST") {
    request.op = Request::Op::kList;
  } else if (op_name == "STATS") {
    request.op = Request::Op::kStats;
  } else if (op_name == "SHARD_PLAN") {
    request.op = Request::Op::kShardPlan;
  } else if (op_name == "SHARD_PULL") {
    request.op = Request::Op::kShardPull;
  } else if (op_name == "SHARD_PUSH") {
    request.op = Request::Op::kShardPush;
  } else {
    throw ProtocolError{"bad_op", "unknown op \"" + op_name + "\""};
  }

  // Shared optional fields.
  if (const Json* seed = doc.find("seed")) {
    try {
      request.seed = seed->as_uint();
    } catch (const JsonError&) {
      throw ProtocolError{"bad_field", "\"seed\" must be a non-negative integer"};
    }
  }
  if (const Json* schema = doc.find("schema_version")) {
    try {
      request.schema_version = static_cast<int>(schema->as_int());
    } catch (const JsonError&) {
      throw ProtocolError{"bad_field", "\"schema_version\" must be an integer"};
    }
  }

  if (request.op == Request::Op::kShardPull) {
    const Json* worker = doc.find("worker");
    if (!worker || !worker->is_string() || worker->as_string().empty()) {
      throw ProtocolError{"bad_field",
                          "SHARD_PULL needs a non-empty string \"worker\""};
    }
    request.worker = worker->as_string();
    return request;
  }
  if (request.op == Request::Op::kShardPush) {
    const Json* worker = doc.find("worker");
    if (!worker || !worker->is_string() || worker->as_string().empty()) {
      throw ProtocolError{"bad_field",
                          "SHARD_PUSH needs a non-empty string \"worker\""};
    }
    request.worker = worker->as_string();
    const Json* key = doc.find("key");
    if (!key || !key->is_string() || key->as_string().empty()) {
      throw ProtocolError{"bad_field",
                          "SHARD_PUSH needs a non-empty string \"key\""};
    }
    request.key = key->as_string();
    const Json* cell = doc.find("cell");
    if (!cell || !cell->is_number()) {
      throw ProtocolError{"bad_field", "SHARD_PUSH needs an integer \"cell\""};
    }
    try {
      request.cell = static_cast<std::size_t>(cell->as_uint());
    } catch (const JsonError&) {
      throw ProtocolError{"bad_field", "\"cell\" must be a non-negative integer"};
    }
    if (const Json* records = doc.find("records")) {
      if (!records->is_array()) {
        throw ProtocolError{"bad_field", "\"records\" must be an array of strings"};
      }
      for (const Json& line : records->as_array()) {
        if (!line.is_string()) {
          throw ProtocolError{"bad_field",
                              "\"records\" must be an array of strings"};
        }
        request.records.push_back(line.as_string());
      }
    }
    if (const Json* done = doc.find("done")) {
      if (!done->is_bool()) {
        throw ProtocolError{"bad_field", "\"done\" must be a boolean"};
      }
      request.done = done->as_bool();
    }
    if (const Json* wall = doc.find("wall_s")) {
      if (!wall->is_number()) {
        throw ProtocolError{"bad_field", "\"wall_s\" must be a number"};
      }
      request.wall_s = wall->as_double();
    }
    return request;
  }
  if (request.op != Request::Op::kGet &&
      request.op != Request::Op::kShardPlan) {
    return request;
  }

  int addresses = 0;
  if (const Json* spec = doc.find("spec")) {
    ++addresses;
    try {
      request.spec = scenario::ScenarioSpec::from_json(*spec);
    } catch (const JsonError& error) {
      throw ProtocolError{"bad_spec", std::string{"inline spec rejected: "} + error.what()};
    }
  }
  if (const Json* name = doc.find("scenario")) {
    ++addresses;
    if (!name->is_string() || name->as_string().empty()) {
      throw ProtocolError{"bad_field", "\"scenario\" must be a non-empty string"};
    }
    request.scenario_name = name->as_string();
  }
  if (const Json* hash = doc.find("hash")) {
    ++addresses;
    if (!hash->is_string() || !is_content_hash(hash->as_string())) {
      throw ProtocolError{"bad_field", "\"hash\" must be a 64-hex content hash"};
    }
    request.hash = hash->as_string();
  }
  if (addresses != 1) {
    throw ProtocolError{
        "bad_field",
        op_name + " needs exactly one of \"spec\", \"scenario\", \"hash\""};
  }
  if (request.schema_version &&
      *request.schema_version != scenario::kResultSchemaVersion) {
    throw ProtocolError{"schema",
                        "result schema version mismatch (server serves v" +
                            std::to_string(scenario::kResultSchemaVersion) + ")"};
  }
  return request;
}

std::string error_response(std::string_view code, std::string_view message) {
  JsonObject error;
  error["code"] = Json{std::string{code}};
  error["message"] = Json{std::string{message}};
  JsonObject root;
  root["error"] = Json{std::move(error)};
  root["ok"] = Json{false};
  return Json{std::move(root)}.canonical();
}

std::string get_response(const std::string& hash, std::uint64_t seed,
                         std::string_view hit, const std::string& summary_json) {
  JsonObject root;
  root["hash"] = Json{hash};
  root["hit"] = Json{std::string{hit}};
  root["ok"] = Json{true};
  root["seed"] = Json{seed};
  // Parse-then-embed: the summary is canonical JSON, and canonical JSON
  // round-trips bit-exactly (pinned by the scenario JSON tests), so the
  // sub-document's bytes inside this response equal the stored summary.
  root["summary"] = Json::parse(summary_json);
  return Json{std::move(root)}.canonical();
}

Response parse_response(std::string_view frame) {
  const Json doc = parse_frame_json(frame);
  if (!doc.is_object()) {
    throw ProtocolError{"bad_json", "response must be a JSON object"};
  }
  const Json* ok = doc.find("ok");
  if (!ok || !ok->is_bool()) {
    throw ProtocolError{"bad_field", "response missing bool field \"ok\""};
  }

  Response response;
  response.ok = ok->as_bool();
  if (!response.ok) {
    const Json* error = doc.find("error");
    if (!error || !error->is_object()) {
      throw ProtocolError{"bad_field", "error response missing \"error\" object"};
    }
    if (const Json* code = error->find("code"); code && code->is_string()) {
      response.error_code = code->as_string();
    }
    if (const Json* message = error->find("message");
        message && message->is_string()) {
      response.error_message = message->as_string();
    }
    return response;
  }
  if (const Json* summary = doc.find("summary")) {
    response.summary = summary->canonical();
    if (const Json* hash = doc.find("hash"); hash && hash->is_string()) {
      response.hash = hash->as_string();
    }
    if (const Json* seed = doc.find("seed"); seed && seed->is_number()) {
      response.seed = seed->as_uint();
    }
    if (const Json* hit = doc.find("hit"); hit && hit->is_string()) {
      response.hit = hit->as_string();
    }
  } else {
    response.body = doc.canonical();
  }
  return response;
}

std::string get_request_frame(const scenario::ScenarioSpec& spec,
                              std::optional<std::uint64_t> seed) {
  JsonObject root;
  root["op"] = Json{"GET"};
  root["protocol"] = Json{kProtocolVersion};
  root["schema_version"] = Json{scenario::kResultSchemaVersion};
  if (seed) root["seed"] = Json{*seed};
  root["spec"] = spec.to_json();
  return Json{std::move(root)}.canonical();
}

std::string get_request_frame_by_name(std::string_view name,
                                      std::optional<std::uint64_t> seed) {
  JsonObject root;
  root["op"] = Json{"GET"};
  root["protocol"] = Json{kProtocolVersion};
  root["scenario"] = Json{std::string{name}};
  root["schema_version"] = Json{scenario::kResultSchemaVersion};
  if (seed) root["seed"] = Json{*seed};
  return Json{std::move(root)}.canonical();
}

std::string get_request_frame_by_hash(std::string_view hash, std::uint64_t seed) {
  JsonObject root;
  root["hash"] = Json{std::string{hash}};
  root["op"] = Json{"GET"};
  root["protocol"] = Json{kProtocolVersion};
  root["schema_version"] = Json{scenario::kResultSchemaVersion};
  root["seed"] = Json{seed};
  return Json{std::move(root)}.canonical();
}

namespace {

/// Shared precondition for the shard response parsers: the frame must be a
/// JSON object with `"ok":true`. Error frames should be routed through
/// parse_response by callers; reaching here with one is a protocol bug.
Json parse_ok_object(std::string_view frame, const char* what) {
  Json doc = parse_frame_json(frame);
  if (!doc.is_object()) {
    throw ProtocolError{"bad_json",
                        std::string{what} + " response must be a JSON object"};
  }
  const Json* ok = doc.find("ok");
  if (!ok || !ok->is_bool() || !ok->as_bool()) {
    throw ProtocolError{"bad_field",
                        std::string{what} + " response is not \"ok\":true"};
  }
  return doc;
}

std::size_t require_size(const Json& object, const char* field,
                         const char* what) {
  const Json* value = object.find(field);
  if (!value || !value->is_number()) {
    throw ProtocolError{"bad_field", std::string{what} +
                                         " response missing integer \"" +
                                         field + "\""};
  }
  try {
    return static_cast<std::size_t>(value->as_uint());
  } catch (const JsonError&) {
    throw ProtocolError{"bad_field", std::string{"\""} + field +
                                         "\" must be a non-negative integer"};
  }
}

}  // namespace

std::string shard_plan_response(const ShardPlanInfo& info) {
  JsonObject root;
  root["assigned"] = Json{static_cast<std::uint64_t>(info.assigned)};
  root["cells"] = Json{static_cast<std::uint64_t>(info.cells)};
  root["completed"] = Json{static_cast<std::uint64_t>(info.completed)};
  root["key"] = Json{info.key};
  root["ok"] = Json{true};
  root["pending"] = Json{static_cast<std::uint64_t>(info.pending)};
  root["state"] = Json{info.state};
  root["workers"] = Json{static_cast<std::uint64_t>(info.workers)};
  return Json{std::move(root)}.canonical();
}

ShardPlanInfo parse_shard_plan_response(std::string_view frame) {
  const Json doc = parse_ok_object(frame, "SHARD_PLAN");
  ShardPlanInfo info;
  const Json* key = doc.find("key");
  if (!key || !key->is_string()) {
    throw ProtocolError{"bad_field", "SHARD_PLAN response missing \"key\""};
  }
  info.key = key->as_string();
  const Json* state = doc.find("state");
  if (!state || !state->is_string()) {
    throw ProtocolError{"bad_field", "SHARD_PLAN response missing \"state\""};
  }
  info.state = state->as_string();
  info.cells = require_size(doc, "cells", "SHARD_PLAN");
  info.completed = require_size(doc, "completed", "SHARD_PLAN");
  info.pending = require_size(doc, "pending", "SHARD_PLAN");
  info.assigned = require_size(doc, "assigned", "SHARD_PLAN");
  info.workers = require_size(doc, "workers", "SHARD_PLAN");
  return info;
}

std::string shard_idle_response(int retry_ms) {
  JsonObject root;
  root["idle"] = Json{true};
  root["ok"] = Json{true};
  root["retry_ms"] = Json{retry_ms};
  return Json{std::move(root)}.canonical();
}

std::string shard_assignment_response(const std::string& key, std::size_t cell,
                                      const scenario::ScenarioSpec& spec,
                                      std::uint64_t seed,
                                      const std::vector<std::string>& resume) {
  JsonObject assignment;
  assignment["cell"] = Json{static_cast<std::uint64_t>(cell)};
  assignment["key"] = Json{key};
  std::vector<Json> lines;
  lines.reserve(resume.size());
  for (const std::string& line : resume) lines.emplace_back(line);
  assignment["resume"] = Json{std::move(lines)};
  assignment["seed"] = Json{seed};
  assignment["spec"] = spec.to_json();
  JsonObject root;
  root["assignment"] = Json{std::move(assignment)};
  root["ok"] = Json{true};
  return Json{std::move(root)}.canonical();
}

ShardAssignment parse_shard_pull_response(std::string_view frame) {
  const Json doc = parse_ok_object(frame, "SHARD_PULL");
  ShardAssignment out;
  if (const Json* idle = doc.find("idle"); idle && idle->is_bool() &&
                                           idle->as_bool()) {
    out.idle = true;
    if (const Json* retry = doc.find("retry_ms");
        retry && retry->is_number()) {
      out.retry_ms = static_cast<int>(retry->as_int());
    }
    return out;
  }
  const Json* assignment = doc.find("assignment");
  if (!assignment || !assignment->is_object()) {
    throw ProtocolError{"bad_field",
                        "SHARD_PULL response has neither \"idle\" nor "
                        "\"assignment\""};
  }
  out.idle = false;
  const Json* key = assignment->find("key");
  if (!key || !key->is_string() || key->as_string().empty()) {
    throw ProtocolError{"bad_field", "assignment missing \"key\""};
  }
  out.key = key->as_string();
  out.cell = require_size(*assignment, "cell", "SHARD_PULL");
  const Json* seed = assignment->find("seed");
  if (!seed || !seed->is_number()) {
    throw ProtocolError{"bad_field", "assignment missing \"seed\""};
  }
  try {
    out.seed = seed->as_uint();
  } catch (const JsonError&) {
    throw ProtocolError{"bad_field",
                        "\"seed\" must be a non-negative integer"};
  }
  const Json* spec = assignment->find("spec");
  if (!spec) {
    throw ProtocolError{"bad_field", "assignment missing \"spec\""};
  }
  try {
    out.spec = scenario::ScenarioSpec::from_json(*spec);
  } catch (const JsonError& error) {
    throw ProtocolError{"bad_spec",
                        std::string{"assignment spec rejected: "} +
                            error.what()};
  }
  if (const Json* resume = assignment->find("resume")) {
    if (!resume->is_array()) {
      throw ProtocolError{"bad_field",
                          "\"resume\" must be an array of strings"};
    }
    for (const Json& line : resume->as_array()) {
      if (!line.is_string()) {
        throw ProtocolError{"bad_field",
                            "\"resume\" must be an array of strings"};
      }
      out.resume.push_back(line.as_string());
    }
  }
  return out;
}

std::string shard_push_response(const ShardPushAck& ack) {
  JsonObject root;
  root["accepted"] = Json{static_cast<std::uint64_t>(ack.accepted)};
  root["campaign_complete"] = Json{ack.campaign_complete};
  root["cell_complete"] = Json{ack.cell_complete};
  root["dropped"] = Json{static_cast<std::uint64_t>(ack.dropped)};
  root["duplicates"] = Json{static_cast<std::uint64_t>(ack.duplicates)};
  root["ok"] = Json{true};
  return Json{std::move(root)}.canonical();
}

ShardPushAck parse_shard_push_response(std::string_view frame) {
  const Json doc = parse_ok_object(frame, "SHARD_PUSH");
  ShardPushAck ack;
  ack.accepted = require_size(doc, "accepted", "SHARD_PUSH");
  ack.duplicates = require_size(doc, "duplicates", "SHARD_PUSH");
  ack.dropped = require_size(doc, "dropped", "SHARD_PUSH");
  const Json* cell = doc.find("cell_complete");
  if (!cell || !cell->is_bool()) {
    throw ProtocolError{"bad_field",
                        "SHARD_PUSH response missing \"cell_complete\""};
  }
  ack.cell_complete = cell->as_bool();
  const Json* campaign = doc.find("campaign_complete");
  if (!campaign || !campaign->is_bool()) {
    throw ProtocolError{"bad_field",
                        "SHARD_PUSH response missing \"campaign_complete\""};
  }
  ack.campaign_complete = campaign->as_bool();
  return ack;
}

std::string list_request_frame() {
  JsonObject root;
  root["op"] = Json{"LIST"};
  root["protocol"] = Json{kProtocolVersion};
  return Json{std::move(root)}.canonical();
}

std::string stats_request_frame() {
  JsonObject root;
  root["op"] = Json{"STATS"};
  root["protocol"] = Json{kProtocolVersion};
  return Json{std::move(root)}.canonical();
}

std::string shard_plan_request_frame_by_name(
    std::string_view name, std::optional<std::uint64_t> seed) {
  JsonObject root;
  root["op"] = Json{"SHARD_PLAN"};
  root["protocol"] = Json{kProtocolVersion};
  root["scenario"] = Json{std::string{name}};
  if (seed) root["seed"] = Json{*seed};
  return Json{std::move(root)}.canonical();
}

std::string shard_pull_request_frame(std::string_view worker) {
  JsonObject root;
  root["op"] = Json{"SHARD_PULL"};
  root["protocol"] = Json{kProtocolVersion};
  root["worker"] = Json{std::string{worker}};
  return Json{std::move(root)}.canonical();
}

std::string shard_push_request_frame(std::string_view worker,
                                     const std::string& key, std::size_t cell,
                                     const std::vector<std::string>& records,
                                     bool done, double wall_s) {
  JsonObject root;
  root["cell"] = Json{static_cast<std::uint64_t>(cell)};
  root["done"] = Json{done};
  root["key"] = Json{key};
  root["op"] = Json{"SHARD_PUSH"};
  root["protocol"] = Json{kProtocolVersion};
  std::vector<Json> lines;
  lines.reserve(records.size());
  for (const std::string& line : records) lines.emplace_back(line);
  root["records"] = Json{std::move(lines)};
  root["wall_s"] = Json{wall_s};
  root["worker"] = Json{std::string{worker}};
  return Json{std::move(root)}.canonical();
}

}  // namespace cloudrepro::serve
