#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "serve/server.h"
#include "serve/transport.h"

namespace cloudrepro::serve {

/// Non-blocking TCP endpoint: the production implementation of the
/// Transport seam. Owns the fd; sets O_NONBLOCK on construction. The wait
/// hooks poll(2) for at most the caller's bound, so a blocking client's
/// deadline checks stay live even against a stalled peer.
class SocketTransport : public Transport {
 public:
  explicit SocketTransport(int fd);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  IoResult read(char* buffer, std::size_t max) override;
  IoResult write(std::string_view data) override;
  void close() override;
  void wait_readable(std::chrono::milliseconds max_wait =
                         std::chrono::milliseconds{100}) override;
  void wait_writable(std::chrono::milliseconds max_wait =
                         std::chrono::milliseconds{100}) override;

  int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// Splits "host:port" (host may be a name or numeric address); throws
/// std::invalid_argument on malformed input.
std::pair<std::string, std::uint16_t> parse_endpoint(const std::string& endpoint);

/// Dials host:port (IPv4/IPv6 via getaddrinfo) and returns a connected
/// non-blocking transport; throws std::runtime_error on failure.
std::unique_ptr<SocketTransport> connect_tcp(const std::string& host,
                                             std::uint16_t port);

/// The poll(2) accept-and-pump loop marrying a listening TCP socket to a
/// ServerCore: readiness interests come from the core, executor
/// completions interrupt the poll through a self-pipe, and accepted fds
/// become SocketTransport connections. Single-threaded — the caller's
/// thread is the reactor thread.
class SocketServer {
 public:
  /// Binds and listens; port 0 picks an ephemeral port (read it back via
  /// `port()`). Throws std::runtime_error on bind/listen failure.
  SocketServer(ServerCore& core, const std::string& host, std::uint16_t port);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Serves until `stop` becomes true, then shuts the core down
  /// gracefully: in-flight campaigns are cancelled (journals intact),
  /// pending responses are flushed (bounded), connections closed.
  void run(const std::atomic<bool>& stop);

 private:
  void accept_ready();
  void prune_closed();

  ServerCore& core_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::map<std::uint64_t, int> connection_fds_;  ///< core id -> fd.
};

}  // namespace cloudrepro::serve
