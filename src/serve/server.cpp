#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/journal.h"
#include "io/vfs.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "scenario/json.h"
#include "scenario/runner.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace cloudrepro::serve {

using scenario::Json;
using scenario::JsonArray;
using scenario::JsonObject;

ServerCore::ServerCore(scenario::ResultStore& store, obs::MetricsRegistry& metrics,
                       ServeOptions options)
    : store_(store),
      metrics_(metrics),
      options_(std::move(options)),
      registry_(options_.registry ? options_.registry
                                  : &scenario::ScenarioRegistry::builtin()) {
  for (const auto& spec : registry_->scenarios()) {
    hash_index_.emplace(spec.content_hash(), &spec);
  }
  executor_ = std::make_unique<runtime::ThreadPool>(
      std::max(1, options_.executor_threads));
}

ServerCore::~ServerCore() {
  shutdown_.store(true, std::memory_order_relaxed);
  // Join the executor from the destructor *body*: its tasks touch the
  // completion queue and the flight table, which member destruction would
  // otherwise tear down first (members die in reverse declaration order).
  executor_.reset();
  for (auto& [id, conn] : connections_) conn.transport->close();
}

std::uint64_t ServerCore::add_connection(std::unique_ptr<Transport> transport) {
  if (!transport) return 0;
  if (connections_.size() >= options_.max_connections) {
    transport->close();
    count("serve.connections_rejected");
    return 0;
  }
  const std::uint64_t id = next_id_++;
  connections_.emplace(
      std::piecewise_construct, std::forward_as_tuple(id),
      std::forward_as_tuple(id, std::move(transport), options_.max_frame_bytes));
  count("serve.connections_accepted");
  metrics_.gauge("serve.connections").set(static_cast<double>(connections_.size()));
  return id;
}

bool ServerCore::poll_once() {
  bool progress = drain_completions();
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& conn = it->second;
    progress |= pump_writes(conn);
    progress |= pump_reads(conn);
    progress |= process_frames(conn);
    // A half-closed connection survives until its response is flushed (the
    // client may have shut down its send side and still be reading).
    const bool flushed_eof =
        conn.read_closed && conn.write_buf.empty() && !conn.executing;
    if (conn.dead || flushed_eof) {
      if (conn.is_worker) forget_worker(conn);
      conn.transport->close();
      count("serve.connections_closed");
      it = connections_.erase(it);
      progress = true;
    } else {
      ++it;
    }
  }
  metrics_.gauge("serve.connections").set(static_cast<double>(connections_.size()));
  return progress;
}

bool ServerCore::drain_completions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock{completions_mu_};
    batch.swap(completions_);
  }
  for (const Completion& completion : batch) {
    const auto it = connections_.find(completion.connection_id);
    if (it == connections_.end()) continue;  // Client left mid-flight.
    Connection& conn = it->second;
    conn.executing = false;
    if (!completion.ok) count("serve.get_errors");
    respond(conn, completion.response);
    observe_latency(conn);
  }
  return !batch.empty();
}

bool ServerCore::pump_writes(Connection& conn) {
  if (conn.dead || conn.write_buf.empty()) return false;
  bool progress = false;
  std::size_t budget = options_.write_budget_per_poll;
  while (budget > 0 && !conn.write_buf.empty()) {
    const std::string_view chunk{conn.write_buf.data(),
                                 std::min(budget, conn.write_buf.size())};
    const IoResult result = conn.transport->write(chunk);
    if (result.status == IoStatus::kOk) {
      conn.write_buf.erase(0, result.bytes);
      budget -= result.bytes;
      count("serve.bytes_out", static_cast<double>(result.bytes));
      progress = true;
    } else if (result.status == IoStatus::kWouldBlock) {
      break;
    } else {
      conn.dead = true;
      break;
    }
  }
  return progress;
}

bool ServerCore::pump_reads(Connection& conn) {
  // Reads pause while a GET executes: the client's next pipelined request
  // stays in the kernel/pipe buffer, which is the per-connection flow
  // control (one outstanding campaign per connection). Reads continue
  // through shutdown — frames are answered with "shutting_down" errors, a
  // clean refusal instead of a silent stall.
  if (conn.dead || conn.executing || conn.read_closed) return false;
  bool progress = false;
  std::size_t budget = options_.read_budget_per_poll;
  char buffer[8 * 1024];
  while (budget > 0) {
    const std::size_t want = std::min(budget, sizeof buffer);
    const IoResult result = conn.transport->read(buffer, want);
    if (result.status == IoStatus::kOk) {
      conn.decoder.push({buffer, result.bytes});
      budget -= result.bytes;
      count("serve.bytes_in", static_cast<double>(result.bytes));
      progress = true;
      if (result.bytes < want) break;  // Drained the transport.
    } else if (result.status == IoStatus::kWouldBlock) {
      break;
    } else if (result.status == IoStatus::kClosed) {
      conn.read_closed = true;
      progress = true;
      break;
    } else {
      conn.dead = true;
      break;
    }
  }
  return progress;
}

bool ServerCore::process_frames(Connection& conn) {
  bool progress = false;
  std::string frame;
  while (!conn.dead && !conn.executing) {
    const FrameDecoder::Status status = conn.decoder.next(frame);
    if (status == FrameDecoder::Status::kNeedMore) break;
    progress = true;
    if (status == FrameDecoder::Status::kOversize) {
      count("serve.requests_oversize");
      respond(conn,
              error_response("oversize",
                             "request frame exceeds " +
                                 std::to_string(options_.max_frame_bytes) +
                                 " bytes"));
      continue;
    }
    count("serve.frames");
    handle_frame(conn, frame);
  }
  return progress;
}

void ServerCore::handle_frame(Connection& conn, const std::string& frame) {
  if (shutdown_.load(std::memory_order_relaxed)) {
    respond(conn, error_response("shutting_down", "server is shutting down"));
    return;
  }
  Request request;
  try {
    request = parse_request(frame);
  } catch (const ProtocolError& error) {
    count("serve.requests_bad");
    respond(conn, error_response(error.code(), error.what()));
    return;
  }
  switch (request.op) {
    case Request::Op::kList:
      count("serve.requests_list");
      respond(conn, list_response());
      return;
    case Request::Op::kStats:
      count("serve.requests_stats");
      respond(conn, stats_response());
      return;
    case Request::Op::kShardPlan:
      count("serve.requests_shard_plan");
      handle_shard_plan(conn, request);
      return;
    case Request::Op::kShardPull:
      count("serve.requests_shard_pull");
      handle_shard_pull(conn, request);
      return;
    case Request::Op::kShardPush:
      count("serve.requests_shard_push");
      handle_shard_push(conn, request);
      return;
    case Request::Op::kGet:
      break;
  }
  count("serve.requests_get");
  conn.request_start = std::chrono::steady_clock::now();
  handle_get(conn, request);
}

const scenario::ScenarioSpec* ServerCore::resolve_request_spec(
    Connection& conn, const Request& request) {
  if (request.spec) return &*request.spec;
  if (!request.scenario_name.empty()) {
    const scenario::ScenarioSpec* spec = resolve_by_name(request.scenario_name);
    if (!spec) {
      count("serve.requests_bad");
      respond(conn, error_response("unknown_scenario",
                                   "no scenario named \"" +
                                       request.scenario_name + "\""));
    }
    return spec;
  }
  const scenario::ScenarioSpec* spec = resolve_by_hash(request.hash);
  if (!spec) {
    count("serve.requests_bad");
    respond(conn,
            error_response("unknown_hash",
                           "no registry scenario with that content hash"));
  }
  return spec;
}

void ServerCore::handle_get(Connection& conn, const Request& request) {
  const scenario::ScenarioSpec* spec = resolve_request_spec(conn, request);
  if (!spec) return;
  const std::uint64_t seed = request.seed.value_or(spec->seed);
  const std::string hash = spec->content_hash();

  // Fast path: complete entries are served inline — no executor hop, no
  // single-flight. Deliberately peek-style (read_summary_checked + touch,
  // not lookup): scenario.cache.* counters keep meaning "campaign
  // admissions", so N served hits do not inflate them — the reconciliation
  // the herd test asserts. A summary corrupted on disk fails validation
  // here, is evicted, and the request falls through to execution.
  if (auto summary = store_.read_summary_checked(*spec, seed)) {
    store_.touch(*spec, seed);
    count("serve.get_hit");
    respond(conn, get_response(hash, seed, "hit", *summary));
    observe_latency(conn);
    return;
  }

  if (inflight_.load(std::memory_order_relaxed) >= options_.max_inflight) {
    count("serve.busy_rejected");
    respond(conn,
            error_response("busy", "execution queue is full; retry later"));
    return;
  }

  conn.executing = true;
  const std::string key = store_.entry_key(*spec, seed);
  const std::uint64_t conn_id = conn.id;
  auto callback = [this, conn_id, hash, seed](const FlightOutcome& outcome,
                                              bool leader) {
    Completion completion;
    completion.connection_id = conn_id;
    completion.ok = outcome.ok;
    completion.response =
        outcome.ok
            ? get_response(hash, seed, leader ? outcome.hit : "coalesced",
                           outcome.summary)
            : error_response(outcome.error_code, outcome.error_message);
    std::function<void()> wake;
    {
      std::lock_guard<std::mutex> lock{completions_mu_};
      completions_.push_back(std::move(completion));
      wake = wake_hook_;
    }
    completions_cv_.notify_all();
    if (wake) wake();
  };

  if (flights_.join(key, std::move(callback))) {
    count("serve.single_flight_leader");
    const auto depth = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    metrics_.gauge("serve.queue_depth").set(static_cast<double>(depth));
    // With workers registered, the leader opens a distributed session
    // instead of executing locally; the session completes this same flight,
    // so the herd still coalesces onto one campaign.
    if (worker_count_ > 0 && open_shard_session(*spec, seed, key)) {
      count("shard.sessions_opened");
      const auto session = sessions_.find(key);
      if (session != sessions_.end() && session->second.plan->complete()) {
        // Warm journal already proves completion (only the summary was
        // missing): finalize immediately, no assignments needed.
        close_session(key);
      }
      return;
    }
    executor_->submit([this, spec = *spec, seed, key] {
      FlightOutcome outcome = execute(spec, seed);
      if (outcome.ok) count("serve.get_executed");
      const auto left = inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
      metrics_.gauge("serve.queue_depth").set(static_cast<double>(left));
      flights_.complete(key, outcome);
    });
  } else {
    count("serve.single_flight_coalesced");
  }
}

void ServerCore::handle_shard_plan(Connection& conn, const Request& request) {
  const scenario::ScenarioSpec* spec = resolve_request_spec(conn, request);
  if (!spec) return;
  const std::uint64_t seed = request.seed.value_or(spec->seed);
  ShardPlanInfo info;
  info.key = store_.entry_key(*spec, seed);
  info.workers = worker_count_;
  const auto it = sessions_.find(info.key);
  if (it != sessions_.end()) {
    const ShardSession& session = it->second;
    info.state = "running";
    info.cells = session.plan->cell_count();
    info.completed = session.plan->completed_cells();
    info.pending = session.pending.size();
    for (const auto& [id, cells] : session.assigned) {
      info.assigned += cells.size();
    }
  } else {
    info.cells = scenario::build_cells(*spec).size();
    if (store_.has_summary(*spec, seed)) {
      info.state = "complete";
      info.completed = info.cells;
    } else {
      info.state = "idle";
    }
  }
  respond(conn, shard_plan_response(info));
}

void ServerCore::handle_shard_pull(Connection& conn, const Request& request) {
  (void)request;  // The worker name is attribution only.
  if (!conn.is_worker) {
    conn.is_worker = true;
    ++worker_count_;
    metrics_.gauge("shard.workers").set(static_cast<double>(worker_count_));
  }
  for (auto& [key, session] : sessions_) {
    if (session.pending.empty()) continue;
    const std::size_t cell = session.pending.front();
    session.pending.pop_front();
    session.assigned[conn.id].push_back(cell);
    count("shard.cells_assigned");
    respond(conn,
            shard_assignment_response(key, cell, session.spec, session.seed,
                                      session.plan->resume_lines(cell)));
    return;
  }
  respond(conn, shard_idle_response(options_.worker_retry_ms));
}

void ServerCore::handle_shard_push(Connection& conn, const Request& request) {
  const auto it = sessions_.find(request.key);
  if (it == sessions_.end()) {
    respond(conn, error_response("unknown_session",
                                 "no open shard session for that key"));
    return;
  }
  ShardSession& session = it->second;
  if (request.cell >= session.plan->cell_count()) {
    count("serve.requests_bad");
    respond(conn, error_response("bad_field", "cell index out of range"));
    return;
  }
  shard::ShardPlan::PushOutcome outcome;
  try {
    outcome = session.plan->push(request.cell, request.records);
  } catch (const shard::ShardMergeError& error) {
    // Nothing was committed (push has strong exception safety); requeue the
    // cell so a healthy worker re-derives it, and bounce the typed error to
    // the pusher.
    count("shard.push_rejected");
    release_assignment(session, conn.id, request.cell, /*requeue=*/true);
    respond(conn, error_response(error.code(), error.what()));
    return;
  }
  count("shard.records_accepted", static_cast<double>(outcome.accepted));
  count("shard.records_duplicate", static_cast<double>(outcome.duplicates));
  if (request.wall_s > 0) {
    metrics_.histogram("shard.cell_wall_s").observe(request.wall_s);
  }
  // Completion is *derived* from the plan's record set, never taken from the
  // worker's claim: a cancelled or lossy worker's cell goes back in the
  // queue regardless of what it said.
  const bool cell_done = session.plan->cell_complete(request.cell);
  release_assignment(session, conn.id, request.cell, /*requeue=*/!cell_done);
  if (cell_done) count("shard.cells_completed");
  ShardPushAck ack;
  ack.accepted = outcome.accepted;
  ack.duplicates = outcome.duplicates;
  ack.dropped = outcome.dropped;
  ack.cell_complete = cell_done;
  ack.campaign_complete = session.plan->complete();
  respond(conn, shard_push_response(ack));
  if (ack.campaign_complete) close_session(request.key);
}

bool ServerCore::open_shard_session(const scenario::ScenarioSpec& spec,
                                    std::uint64_t seed,
                                    const std::string& key) {
  try {
    scenario::EntryLock lock = store_.try_lock(spec, seed);
    if (!lock) return false;  // Cross-process holder: the executor path waits.
    std::filesystem::path journal_path = store_.prepare(spec, seed);
    const auto cells = scenario::build_cells(spec);
    const core::CampaignOptions copts = scenario::campaign_options(spec);
    auto plan = std::make_unique<shard::ShardPlan>(cells, copts, seed);
    try {
      plan->absorb_replay(core::replay_journal(io::real_vfs(), journal_path,
                                               plan->header(), cells.size(),
                                               copts.repetitions_per_cell));
    } catch (const core::JournalMismatch&) {
      // A journal from a different grid/build: evict and go cold, exactly
      // as run_scenario would.
      lock.release();
      store_.evict(spec, seed);
      journal_path = store_.prepare(spec, seed);
      lock = store_.try_lock(spec, seed);
      if (!lock) return false;
      plan = std::make_unique<shard::ShardPlan>(cells, copts, seed);
    }
    ShardSession session;
    session.spec = spec;
    session.seed = seed;
    session.journal_path = std::move(journal_path);
    for (const std::size_t cell : plan->execution_order()) {
      if (!plan->cell_complete(cell)) session.pending.push_back(cell);
    }
    session.plan = std::move(plan);
    session.lock = std::make_shared<scenario::EntryLock>(std::move(lock));
    sessions_.emplace(key, std::move(session));
    return true;
  } catch (const std::exception&) {
    return false;  // Session setup failed; the executor path still works.
  }
}

void ServerCore::close_session(const std::string& key) {
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  ShardSession session = std::move(it->second);
  sessions_.erase(it);

  // Snapshot the journal bytes on the reactor (the plan dies with the
  // session): the canonical merged journal when complete, else the header
  // plus every known record — replay accepts the set in any order.
  const bool complete = session.plan->complete();
  std::string bytes;
  if (complete) {
    bytes = session.plan->merge();
  } else {
    bytes = session.plan->header();
    bytes += '\n';
    for (const std::size_t cell : session.plan->execution_order()) {
      for (const std::string& line : session.plan->resume_lines(cell)) {
        bytes += line;
        bytes += '\n';
      }
    }
  }
  count(complete ? "shard.sessions_finalized" : "shard.sessions_demoted");

  // File I/O and the replay run belong on the executor. The peer
  // read-through is skipped: the journal on disk is already authoritative.
  executor_->submit([this, key, spec = session.spec, seed = session.seed,
                     path = session.journal_path, bytes = std::move(bytes),
                     lock = session.lock] {
    FlightOutcome outcome;
    try {
      io::Vfs& vfs = io::real_vfs();
      {
        auto file = vfs.open_write(path, io::WriteMode::kTruncate);
        file->append(bytes);
        file->sync();
        file->close();
      }
      vfs.sync_dir(path.parent_path());
      // Release before the replay run: run_scenario takes the entry lock
      // itself, and this process already holding it would read as
      // contention.
      lock->release();
      outcome = execute(spec, seed, /*allow_peer=*/false);
    } catch (const std::exception& error) {
      lock->release();
      outcome.ok = false;
      outcome.error_code = "execution";
      outcome.error_message = error.what();
    }
    if (outcome.ok) count("serve.get_executed");
    const auto left = inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
    metrics_.gauge("serve.queue_depth").set(static_cast<double>(left));
    flights_.complete(key, outcome);
  });
}

void ServerCore::forget_worker(const Connection& conn) {
  --worker_count_;
  metrics_.gauge("shard.workers").set(static_cast<double>(worker_count_));
  for (auto& [key, session] : sessions_) {
    const auto it = session.assigned.find(conn.id);
    if (it == session.assigned.end()) continue;
    for (const std::size_t cell : it->second) {
      if (!session.plan->cell_complete(cell)) {
        session.pending.push_back(cell);
        count("shard.cells_reassigned");
      }
    }
    session.assigned.erase(it);
  }
  if (worker_count_ == 0 && !sessions_.empty()) {
    // The last worker died: demote every open session to local execution,
    // resuming from whatever the workers pushed.
    std::vector<std::string> keys;
    keys.reserve(sessions_.size());
    for (const auto& [key, session] : sessions_) keys.push_back(key);
    for (const std::string& key : keys) close_session(key);
  }
}

void ServerCore::release_assignment(ShardSession& session,
                                    std::uint64_t conn_id, std::size_t cell,
                                    bool requeue) {
  const auto it = session.assigned.find(conn_id);
  if (it != session.assigned.end()) {
    auto& cells = it->second;
    cells.erase(std::remove(cells.begin(), cells.end(), cell), cells.end());
    if (cells.empty()) session.assigned.erase(it);
  }
  if (requeue && std::find(session.pending.begin(), session.pending.end(),
                           cell) == session.pending.end()) {
    session.pending.push_back(cell);
  }
}

FlightOutcome ServerCore::execute(const scenario::ScenarioSpec& spec,
                                  std::uint64_t seed, bool allow_peer) {
  FlightOutcome outcome;
  try {
    if (allow_peer && options_.peer && fetch_from_peer(spec, seed, outcome)) {
      return outcome;
    }
    scenario::RunOptions run;
    run.threads = options_.campaign_threads;
    run.seed = seed;
    run.store = &store_;
    run.metrics = &metrics_;
    run.cancel = &shutdown_;
    const scenario::ScenarioRunResult result = scenario::run_scenario(spec, run);
    if (!result.complete) {
      outcome.error_code = "interrupted";
      outcome.error_message =
          "campaign interrupted before completion; journaled progress resumes "
          "on retry";
      return outcome;
    }
    outcome.ok = true;
    outcome.summary = result.summary;
    outcome.hit = scenario::ResultStore::to_string(result.hit_state);
  } catch (const std::exception& error) {
    outcome.error_code = "execution";
    outcome.error_message = error.what();
  }
  return outcome;
}

bool ServerCore::fetch_from_peer(const scenario::ScenarioSpec& spec,
                                 std::uint64_t seed, FlightOutcome& outcome) {
  try {
    std::unique_ptr<Transport> transport = options_.peer();
    if (!transport) {
      count("serve.peer_error");
      return false;
    }
    FetchClient client{std::move(transport)};
    const Response response = client.get(spec, seed);
    if (!response.ok || response.summary.empty()) {
      count("serve.peer_miss");
      return false;
    }
    if (response.hash != spec.content_hash()) {
      count("serve.peer_error");
      return false;
    }
    store_.prepare(spec, seed);
    store_.write_summary(spec, seed, response.summary);
    outcome.ok = true;
    outcome.summary = response.summary;
    outcome.hit = "peer";
    count("serve.peer_hit");
    return true;
  } catch (const std::exception&) {
    count("serve.peer_error");
    return false;
  }
}

void ServerCore::respond(Connection& conn, const std::string& response) {
  if (conn.dead) return;
  conn.write_buf += response;
  conn.write_buf += '\n';
  if (conn.write_buf.size() > options_.max_write_buffer) {
    count("serve.slow_client_drops");
    conn.dead = true;
  }
}

void ServerCore::observe_latency(const Connection& conn) {
  const auto elapsed = std::chrono::steady_clock::now() - conn.request_start;
  metrics_.histogram("serve.request_latency_s")
      .observe(std::chrono::duration<double>(elapsed).count());
}

const scenario::ScenarioSpec* ServerCore::resolve_by_name(
    const std::string& name) const {
  return registry_->find(name);
}

const scenario::ScenarioSpec* ServerCore::resolve_by_hash(
    const std::string& hash) const {
  const auto it = hash_index_.find(hash);
  return it == hash_index_.end() ? nullptr : it->second;
}

std::string ServerCore::list_response() const {
  JsonObject root;
  root["ok"] = Json{true};
  JsonArray scenarios;
  for (const auto& spec : registry_->scenarios()) {
    JsonObject item;
    item["hash"] = Json{spec.content_hash()};
    item["name"] = Json{spec.name};
    item["seed"] = Json{spec.seed};
    scenarios.push_back(Json{std::move(item)});
  }
  root["scenarios"] = Json{std::move(scenarios)};
  JsonArray cache;
  for (const auto& entry : store_.entries()) {
    JsonObject item;
    item["complete"] = Json{entry.complete};
    item["key"] = Json{entry.key};
    item["measurements"] =
        Json{static_cast<std::uint64_t>(entry.journal_measurements)};
    cache.push_back(Json{std::move(item)});
  }
  root["cache"] = Json{std::move(cache)};
  return Json{std::move(root)}.canonical();
}

std::string ServerCore::stats_response() {
  metrics_.gauge("serve.connections").set(static_cast<double>(connections_.size()));
  metrics_.gauge("serve.queue_depth")
      .set(static_cast<double>(inflight_.load(std::memory_order_relaxed)));
  metrics_.gauge("serve.open_flights")
      .set(static_cast<double>(flights_.open_flights()));
  JsonObject root;
  root["metrics"] = Json::parse(metrics_.to_json());
  root["ok"] = Json{true};
  return Json{std::move(root)}.canonical();
}

void ServerCore::count(const char* name, double delta) {
  metrics_.counter(name).add(delta);
}

std::vector<ServerCore::Interest> ServerCore::interests() const {
  std::vector<Interest> out;
  out.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) {
    Interest interest;
    interest.id = id;
    interest.want_read = !conn.executing && !conn.read_closed && !conn.dead;
    interest.want_write = !conn.write_buf.empty();
    out.push_back(interest);
  }
  return out;
}

void ServerCore::set_wake_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock{completions_mu_};
  wake_hook_ = std::move(hook);
}

void ServerCore::wait_activity(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock{completions_mu_};
  completions_cv_.wait_for(lock, timeout,
                           [this] { return !completions_.empty(); });
}

void ServerCore::pump_until_idle() {
  for (;;) {
    const bool progress = poll_once();
    if (progress) continue;
    bool buffered = false;
    for (const auto& [id, conn] : connections_) {
      if (!conn.write_buf.empty() || conn.decoder.buffered() > 0) {
        buffered = true;
        break;
      }
    }
    const bool busy =
        inflight_.load(std::memory_order_relaxed) != 0 || flights_.open_flights() != 0;
    if (!busy && !buffered) {
      std::lock_guard<std::mutex> lock{completions_mu_};
      if (completions_.empty()) return;
      continue;
    }
    wait_activity(std::chrono::milliseconds{5});
  }
}

void ServerCore::begin_shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  // Open shard sessions drain through the executor: their partial journals
  // are persisted (resumable) and their flights complete — as "interrupted"
  // when the replay run sees the cancel flag before finishing.
  std::vector<std::string> keys;
  keys.reserve(sessions_.size());
  for (const auto& [key, session] : sessions_) keys.push_back(key);
  for (const std::string& key : keys) close_session(key);
}

bool ServerCore::drained() const {
  if (inflight_.load(std::memory_order_relaxed) != 0) return false;
  {
    std::lock_guard<std::mutex> lock{completions_mu_};
    if (!completions_.empty()) return false;
  }
  for (const auto& [id, conn] : connections_) {
    if (!conn.write_buf.empty()) return false;
  }
  return true;
}

}  // namespace cloudrepro::serve
