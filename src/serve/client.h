#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "scenario/spec.h"
#include "serve/frame.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace cloudrepro::serve {

/// A request exceeded its wall-clock budget (connection made but the peer
/// never delivered). Distinct from transport loss so the CLI can map it to
/// the retryable exit code.
class FetchTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Blocking request/response client over any Transport: `cloudrepro fetch`
/// over a TCP socket, the server's peer read-through over a socket, and the
/// tests over in-memory pipes. One request at a time; the transport's
/// wait hooks park the thread between partial reads/writes — bounded by
/// the request deadline, so a hung peer surfaces as FetchTimeout instead
/// of an unbounded block.
class FetchClient {
 public:
  struct Options {
    /// Total wall-clock budget per request. Generous by default: a GET for
    /// an uncached scenario legitimately waits for a full campaign.
    std::chrono::milliseconds timeout{10 * 60 * 1000};
    /// Response frames above this are a protocol failure (responses embed
    /// whole summaries, so the bound is much larger than the server's
    /// request-side bound).
    std::size_t max_frame_bytes = 64u << 20;
  };

  explicit FetchClient(std::unique_ptr<Transport> transport)
      : FetchClient(std::move(transport), Options{}) {}
  FetchClient(std::unique_ptr<Transport> transport, Options options);

  Response get(const scenario::ScenarioSpec& spec,
               std::optional<std::uint64_t> seed = std::nullopt);
  Response get_by_name(std::string_view name,
                       std::optional<std::uint64_t> seed = std::nullopt);
  Response get_by_hash(std::string_view hash, std::uint64_t seed);
  Response list();
  Response stats();

  /// Sends one raw frame (newline appended) and returns the parsed reply.
  /// Throws FetchTimeout past the deadline, std::runtime_error on transport
  /// loss, ProtocolError on an unparseable reply.
  Response request(const std::string& frame);

 private:
  using Deadline = std::chrono::steady_clock::time_point;
  void write_all(std::string_view data, Deadline deadline);
  std::string read_frame(Deadline deadline);

  std::unique_ptr<Transport> transport_;
  FrameDecoder decoder_;
  Options options_;
};

}  // namespace cloudrepro::serve
