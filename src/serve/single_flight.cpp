#include "serve/single_flight.h"

#include <utility>

namespace cloudrepro::serve {

bool SingleFlight::join(const std::string& key, Callback callback) {
  std::lock_guard<std::mutex> lock{mu_};
  auto [it, inserted] = flights_.try_emplace(key);
  it->second.callbacks.push_back(std::move(callback));
  return inserted;
}

void SingleFlight::complete(const std::string& key, const FlightOutcome& outcome) {
  std::vector<Callback> callbacks;
  {
    std::lock_guard<std::mutex> lock{mu_};
    auto it = flights_.find(key);
    if (it == flights_.end()) return;  // complete() without a join is a no-op.
    callbacks = std::move(it->second.callbacks);
    flights_.erase(it);
  }
  // Outside the lock: a callback may re-enter join() for a different key
  // (peer read-through chaining) without deadlocking.
  for (std::size_t i = 0; i < callbacks.size(); ++i) {
    callbacks[i](outcome, i == 0);
  }
}

std::size_t SingleFlight::open_flights() const {
  std::lock_guard<std::mutex> lock{mu_};
  return flights_.size();
}

}  // namespace cloudrepro::serve
