#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/result_store.h"
#include "serve/frame.h"
#include "serve/single_flight.h"
#include "serve/transport.h"
#include "shard/plan.h"

namespace cloudrepro::obs {
class MetricsRegistry;
}  // namespace cloudrepro::obs

namespace cloudrepro::runtime {
class ThreadPool;
}  // namespace cloudrepro::runtime

namespace cloudrepro::serve {

struct ServeOptions {
  /// Accept bound; a connection beyond it is closed on arrival (counted in
  /// serve.connections_rejected).
  std::size_t max_connections = 64;
  /// Request frames longer than this are answered with an "oversize" error
  /// and skipped (the connection survives).
  std::size_t max_frame_bytes = 1 << 20;
  /// Bounded execution queue: campaigns in flight (leaders). A GET arriving
  /// with the queue full is answered "busy" immediately instead of queueing
  /// without bound — the request-side backpressure valve.
  std::size_t max_inflight = 16;
  /// Per-connection bytes written per reactor pass. A slow client cannot
  /// monopolize the reactor: its response trickles out one budget per pass
  /// while other connections make progress.
  std::size_t write_budget_per_poll = 64 * 1024;
  /// Per-connection bytes read per reactor pass (read-side fairness).
  std::size_t read_budget_per_poll = 64 * 1024;
  /// A connection whose outbound buffer exceeds this is dropped: the client
  /// is not draining and the buffer must not grow without bound.
  std::size_t max_write_buffer = 8u << 20;
  /// Campaign executor pool size (campaign runs must never block the
  /// reactor thread).
  int executor_threads = 2;
  /// `RunOptions::threads` for each executed campaign.
  int campaign_threads = 1;
  /// Retry hint returned to a worker whose SHARD_PULL found no work.
  int worker_retry_ms = 50;
  /// Scenario catalog for name/hash-addressed GETs; null = builtin().
  const scenario::ScenarioRegistry* registry = nullptr;
  /// Read-through peer: on a local miss the leader first asks the peer for
  /// the entry and, on success, stores and serves its summary. Returning
  /// null (or throwing) counts as a peer error and falls back to local
  /// execution. The factory runs on executor threads.
  std::function<std::unique_ptr<Transport>()> peer;
};

/// The protocol engine of `cloudrepro serve`: per-connection state machines
/// over the `Transport` seam, a single-flight table collapsing a thundering
/// herd onto one campaign, bounded request/write queues with backpressure,
/// and `serve.*` metrics through the obs registry.
///
/// Threading model (epee-style reactor): all connection state lives on ONE
/// reactor thread — the caller of `add_connection` / `poll_once` — so state
/// machines need no locks. Campaign execution happens on an internal worker
/// pool; completions cross back through a mutex-guarded queue drained at
/// the top of every `poll_once`. Client endpoints of in-memory transports
/// may be driven from any number of other threads (the pipes are
/// thread-safe), which is how the hammer/herd tests run hermetically.
///
/// Counters:
///   serve.connections_accepted / _rejected / _closed
///   serve.bytes_in / serve.bytes_out
///   serve.frames                      complete frames decoded
///   serve.requests_get / _list / _stats
///   serve.requests_bad                unparseable or invalid frames
///   serve.requests_oversize           frames over max_frame_bytes
///   serve.busy_rejected               GETs refused by the inflight bound
///   serve.get_hit                     served from the local cache directly
///   serve.get_executed                leader campaigns completed ok
///   serve.get_errors                  GET outcomes delivered as errors
///   serve.single_flight_leader        flights opened (one campaign each)
///   serve.single_flight_coalesced     requests that shared an open flight
///   serve.peer_hit / _miss / _error   read-through outcomes
///   serve.slow_client_drops           connections dropped over max_write_buffer
///   serve.requests_shard_plan / _shard_pull / _shard_push
///   shard.sessions_opened             distributed campaigns started
///   shard.sessions_finalized          merged complete and published
///   shard.sessions_demoted            fell back to local execution
///   shard.cells_assigned / _completed / _reassigned
///   shard.records_accepted / _duplicate
///   shard.push_rejected               pushes refused by a merge invariant
/// Gauges: serve.connections, serve.queue_depth (inflight campaigns),
///         shard.workers (registered worker connections).
/// Histograms: serve.request_latency_s (GET admission to response enqueue),
///             shard.cell_wall_s (worker-reported cell wall time).
///
/// Distributed campaigns: a leader GET that finds worker connections
/// registered (a prior SHARD_PULL marks its connection) opens a *shard
/// session* instead of submitting the campaign to the executor. The session
/// owns the entry lock and a shard::ShardPlan; workers pull cell
/// assignments and push journal records; once the plan proves the campaign
/// complete, the merged journal is persisted and replayed through
/// run_scenario (zero new measurements), publishing a summary
/// byte-identical to a single-node run. A worker death requeues its cells;
/// the death of the *last* worker demotes every open session to the
/// ordinary executor path, which resumes from the persisted partial
/// journal. Single-flight semantics are unchanged — the session completes
/// the same flight the leader GET opened, so a herd on an uncached scenario
/// still costs exactly one (now distributed) campaign.
class ServerCore {
 public:
  ServerCore(scenario::ResultStore& store, obs::MetricsRegistry& metrics,
             ServeOptions options = {});
  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  /// Adopts a transport as a new connection; returns its id, or 0 when the
  /// connection table is full (the transport is closed and counted).
  /// Reactor thread only.
  std::uint64_t add_connection(std::unique_ptr<Transport> transport);

  /// One reactor pass: drain executor completions, then per connection
  /// write (budgeted), read (budgeted), decode, and dispatch. Returns true
  /// when any work was done — the caller's idle detector. Reactor thread
  /// only.
  bool poll_once();

  /// Blocks until an executor completion lands (or `timeout`); the socket
  /// loop and test pumps park here instead of spinning.
  void wait_activity(std::chrono::milliseconds timeout);

  /// Drives poll_once / wait_activity until no connection has buffered
  /// input or output and no campaign is in flight. Test harness helper.
  void pump_until_idle();

  /// New frames get "shutting_down" errors; in-flight campaigns are
  /// cancelled cooperatively (journals flushed — resumable), open shard
  /// sessions persist their partial journals and drain through the
  /// executor, outcomes are still delivered, and write buffers drain.
  /// Reactor thread only.
  void begin_shutdown();
  /// True once nothing is in flight and every response byte is out.
  bool drained() const;

  std::size_t connection_count() const { return connections_.size(); }
  std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }

  /// Readiness interest per connection, for an external poll(2) loop.
  struct Interest {
    std::uint64_t id = 0;
    bool want_read = false;
    bool want_write = false;
  };
  std::vector<Interest> interests() const;

  /// Invoked (from executor threads) whenever a completion lands; a socket
  /// loop writes its self-pipe here to interrupt poll(2).
  void set_wake_hook(std::function<void()> hook);

 private:
  struct Connection {
    std::uint64_t id = 0;
    std::unique_ptr<Transport> transport;
    FrameDecoder decoder;
    std::string write_buf;
    bool executing = false;    ///< A GET is in flight; reads are paused.
    bool read_closed = false;  ///< Peer EOF seen; flush then drop.
    bool dead = false;         ///< Marked for removal at the end of the pass.
    bool is_worker = false;    ///< Sent a SHARD_PULL; cells may be assigned.
    std::chrono::steady_clock::time_point request_start{};

    Connection(std::uint64_t id_, std::unique_ptr<Transport> t,
               std::size_t max_frame)
        : id(id_), transport(std::move(t)), decoder(max_frame) {}
  };

  struct Completion {
    std::uint64_t connection_id = 0;
    std::string response;  ///< Without trailing newline.
    bool ok = false;
  };

  /// One open distributed campaign, keyed in `sessions_` by the cache entry
  /// key (the single-flight key — the flight the leader GET opened is the
  /// flight this session completes). Reactor thread only.
  struct ShardSession {
    scenario::ScenarioSpec spec;
    std::uint64_t seed = 0;
    std::filesystem::path journal_path;
    std::unique_ptr<shard::ShardPlan> plan;
    /// Held for the session's whole life; shared_ptr because the finalize
    /// closure (a copyable std::function) releases it on an executor thread
    /// after persisting the journal.
    std::shared_ptr<scenario::EntryLock> lock;
    /// Unassigned incomplete cells, in canonical execution order.
    std::deque<std::size_t> pending;
    /// connection id -> cells currently out with that worker.
    std::map<std::uint64_t, std::vector<std::size_t>> assigned;
  };

  // Reactor-side steps.
  bool drain_completions();
  bool pump_writes(Connection& conn);
  bool pump_reads(Connection& conn);
  bool process_frames(Connection& conn);
  void handle_frame(Connection& conn, const std::string& frame);
  void handle_get(Connection& conn, const struct Request& request);
  void respond(Connection& conn, const std::string& response);
  void observe_latency(const Connection& conn);

  // Shard coordination (reactor thread only).
  void handle_shard_plan(Connection& conn, const struct Request& request);
  void handle_shard_pull(Connection& conn, const struct Request& request);
  void handle_shard_push(Connection& conn, const struct Request& request);
  /// Opens a session for the flight's leader; false = fall back to the
  /// executor (cross-process lock holder, or session setup failed).
  bool open_shard_session(const scenario::ScenarioSpec& spec,
                          std::uint64_t seed, const std::string& key);
  /// Persists the session's journal (merged when complete, partial
  /// otherwise), erases it, and hands the flight to the executor: release
  /// the entry lock, replay/resume through run_scenario, complete the
  /// flight.
  void close_session(const std::string& key);
  /// Worker connection going away: requeue its cells; when it was the last
  /// worker, demote every open session to local execution.
  void forget_worker(const Connection& conn);
  static void release_assignment(ShardSession& session, std::uint64_t conn_id,
                                 std::size_t cell, bool requeue);

  // Request plumbing.
  const scenario::ScenarioSpec* resolve_by_name(const std::string& name) const;
  const scenario::ScenarioSpec* resolve_by_hash(const std::string& hash) const;
  /// GET / SHARD_PLAN addressing: resolves the request's spec, answering
  /// the error itself (and returning null) when nothing matches.
  const scenario::ScenarioSpec* resolve_request_spec(
      Connection& conn, const struct Request& request);
  std::string list_response() const;
  std::string stats_response();
  FlightOutcome execute(const scenario::ScenarioSpec& spec, std::uint64_t seed,
                        bool allow_peer = true);
  bool fetch_from_peer(const scenario::ScenarioSpec& spec, std::uint64_t seed,
                       FlightOutcome& outcome);
  void count(const char* name, double delta = 1.0);

  scenario::ResultStore& store_;
  obs::MetricsRegistry& metrics_;
  ServeOptions options_;
  const scenario::ScenarioRegistry* registry_;
  /// content hash -> registry spec, built once at construction: what makes
  /// `GET {"hash": ...}` resolvable without shipping the spec.
  std::map<std::string, const scenario::ScenarioSpec*> hash_index_;

  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t next_id_ = 1;
  std::atomic<bool> shutdown_{false};

  /// Open distributed campaigns by entry key, plus the count of connections
  /// registered as workers. Reactor thread only.
  std::map<std::string, ShardSession> sessions_;
  std::size_t worker_count_ = 0;

  SingleFlight flights_;
  std::unique_ptr<runtime::ThreadPool> executor_;
  std::atomic<std::size_t> inflight_{0};

  mutable std::mutex completions_mu_;
  std::condition_variable completions_cv_;
  std::deque<Completion> completions_;
  std::function<void()> wake_hook_;  ///< Guarded by completions_mu_.
};

}  // namespace cloudrepro::serve
