#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "serve/transport.h"

namespace cloudrepro::serve {

/// Configuration for one worker loop (`cloudrepro work`). A worker holds a
/// single connection to the coordinator and alternates SHARD_PULL /
/// SHARD_PUSH until cancelled (or until the coordinator goes quiet for
/// `max_idle_polls` consecutive pulls, when that bound is set — how tests
/// and CI keep workers from running forever).
struct WorkerOptions {
  /// Worker name echoed in every request; shows up in coordinator logs and
  /// SHARD_PLAN worker attribution.
  std::string name = "worker";
  /// Measurement threads per assigned cell (non-adaptive cells only;
  /// adaptive cells are inherently sequential). Never affects bytes.
  int threads = 1;
  /// Floor for the idle backoff; the coordinator's advertised retry_ms
  /// wins when larger.
  int idle_sleep_ms = 50;
  /// Exit after this many consecutive idle pulls; 0 = poll until cancelled.
  int max_idle_polls = 0;
  /// Cooperative cancellation (SIGINT/SIGTERM). A cell in flight finishes
  /// its current repetition, pushes its partial progress, and the loop
  /// exits.
  const std::atomic<bool>* cancel = nullptr;
  /// Human-readable progress lines ("assigned cell 3 of fig13-confirm",
  /// ...); the CLI points this at stderr. Null = silent.
  std::function<void(const std::string&)> on_event;
};

struct WorkerStats {
  std::size_t cells_completed = 0;  ///< Assignments pushed with done=true.
  std::size_t cells_partial = 0;    ///< Assignments pushed incomplete.
  std::size_t records_pushed = 0;   ///< Record lines the coordinator accepted.
  std::size_t idle_polls = 0;
};

/// Runs the pull/run/push worker loop over `transport` until cancellation,
/// idle exhaustion, or coordinator shutdown. Per-session context (cells
/// built from the inline spec) is cached by session key, so repeated
/// assignments from one campaign pay spec materialization once; an
/// `unknown_session` push rejection drops the cached context and the loop
/// continues (the coordinator finalized or abandoned that campaign —
/// normal when this worker raced the last cell).
///
/// Throws std::runtime_error on transport loss and ProtocolError on
/// malformed coordinator frames; a clean coordinator shutdown
/// ("shutting_down" rejection) returns normally.
WorkerStats run_worker(std::unique_ptr<Transport> transport,
                       const WorkerOptions& options);

}  // namespace cloudrepro::serve
