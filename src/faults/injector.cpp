#include "faults/injector.h"

#include <algorithm>
#include <cstdint>

#include "obs/obs.h"
#include "obs/trace.h"

namespace cloudrepro::faults {

FaultInjector::FaultInjector(const FaultPlan& plan) {
  heap_.reserve(plan.size());
  for (const auto& event : plan.events()) schedule(event);
}

double FaultInjector::next_time() const noexcept {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.front().event.at_s;
}

FaultEvent FaultInjector::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const FaultEvent event = heap_.back().event;
  heap_.pop_back();
  CLOUDREPRO_OBS_STMT(
      if (tracer_) {
        tracer_->instant(event.at_s, "faults", to_string(event.kind),
                         {"node", static_cast<double>(event.node)},
                         {"magnitude", event.magnitude},
                         static_cast<std::uint32_t>(event.node), 1);
      })
  return event;
}

void FaultInjector::schedule(FaultEvent event) {
  heap_.push_back(Entry{event, next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

}  // namespace cloudrepro::faults
