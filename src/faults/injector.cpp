#include "faults/injector.h"

#include <cstdint>

#include "obs/obs.h"
#include "obs/trace.h"

namespace cloudrepro::faults {

FaultInjector::FaultInjector(const FaultPlan& plan) {
  for (const auto& event : plan.events()) schedule(event);
}

double FaultInjector::next_time() const noexcept {
  return queue_.next_time();
}

FaultEvent FaultInjector::pop() {
  const FaultEvent event = queue_.pop();
  CLOUDREPRO_OBS_STMT(
      if (tracer_) {
        tracer_->instant(event.at_s, "faults", to_string(event.kind),
                         {"node", static_cast<double>(event.node)},
                         {"magnitude", event.magnitude},
                         static_cast<std::uint32_t>(event.node), 1);
      })
  return event;
}

void FaultInjector::schedule(FaultEvent event) {
  queue_.push(event.at_s, event);
}

}  // namespace cloudrepro::faults
