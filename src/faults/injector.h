#pragma once

#include <cstddef>
#include <limits>

#include "faults/fault_plan.h"
#include "runtime/calendar_queue.h"

namespace cloudrepro::obs {
class Tracer;
}  // namespace cloudrepro::obs

namespace cloudrepro::faults {

/// Time-ordered cursor over a `FaultPlan` plus any synthetic follow-up
/// events the consumer schedules while replaying it (restores at the end of
/// a slowdown window, the delayed death behind a revocation notice).
///
/// The injector is the one place that decides *when* the next fault fires;
/// the consumer (the engine) decides *what* it does to the cluster. Events
/// due at the same instant pop in scheduling order — the calendar queue
/// tie-breaks on its internal push sequence — so replay is deterministic:
/// the pop order is a pure function of the schedule order, exactly as with
/// the explicit (at_s, seq) heap this replaced.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Copies the plan's events into the queue. The plan may be discarded
  /// afterwards.
  explicit FaultInjector(const FaultPlan& plan);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Time of the earliest pending event; +infinity when none remain.
  double next_time() const noexcept;

  /// Removes and returns the earliest pending event. Undefined when empty —
  /// guard with `next_time()`.
  FaultEvent pop();

  /// Schedules a synthetic follow-up (e.g. the restore that ends a slowdown
  /// window, encoded as a kTransientSlowdown with magnitude 1).
  void schedule(FaultEvent event);

  /// Attaches a tracer (null clears): every popped event — planned faults
  /// and synthetic follow-ups alike — is recorded as an instant at its
  /// scheduled simulated time, lane = struck node, named after its kind.
  /// No-op when the observability layer is compiled out.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  /// Fault plans tick on the hours-scale horizon; seconds-wide buckets are
  /// a reasonable seed and the calendar re-tunes itself on growth.
  runtime::CalendarQueue<FaultEvent> queue_{60.0};
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace cloudrepro::faults
