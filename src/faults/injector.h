#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "faults/fault_plan.h"

namespace cloudrepro::obs {
class Tracer;
}  // namespace cloudrepro::obs

namespace cloudrepro::faults {

/// Time-ordered cursor over a `FaultPlan` plus any synthetic follow-up
/// events the consumer schedules while replaying it (restores at the end of
/// a slowdown window, the delayed death behind a revocation notice).
///
/// The injector is the one place that decides *when* the next fault fires;
/// the consumer (the engine) decides *what* it does to the cluster. Events
/// due at the same instant pop in scheduling order, so replay is
/// deterministic.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Copies the plan's events into the queue. The plan may be discarded
  /// afterwards.
  explicit FaultInjector(const FaultPlan& plan);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event; +infinity when none remain.
  double next_time() const noexcept;

  /// Removes and returns the earliest pending event. Undefined when empty —
  /// guard with `next_time()`.
  FaultEvent pop();

  /// Schedules a synthetic follow-up (e.g. the restore that ends a slowdown
  /// window, encoded as a kTransientSlowdown with magnitude 1).
  void schedule(FaultEvent event);

  /// Attaches a tracer (null clears): every popped event — planned faults
  /// and synthetic follow-ups alike — is recorded as an instant at its
  /// scheduled simulated time, lane = struck node, named after its kind.
  /// No-op when the observability layer is compiled out.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  struct Entry {
    FaultEvent event;
    std::size_t seq = 0;  ///< Tie-breaker: earlier scheduling pops first.
  };
  static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.event.at_s != b.event.at_s) return a.event.at_s > b.event.at_s;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;  ///< Min-heap via `later` as std::push_heap comparator.
  std::size_t next_seq_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace cloudrepro::faults
