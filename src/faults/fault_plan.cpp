#include "faults/fault_plan.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cloudrepro::faults {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kSpotRevocation: return "spot-revocation";
    case FaultKind::kTransientSlowdown: return "transient-slowdown";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kTokenTheft: return "token-theft";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  if (event.at_s < 0.0) {
    throw std::invalid_argument{"FaultPlan: event time must be non-negative"};
  }
  if (event.duration_s < 0.0) {
    throw std::invalid_argument{"FaultPlan: duration must be non-negative"};
  }
  switch (event.kind) {
    case FaultKind::kTransientSlowdown:
      if (event.magnitude <= 0.0 || event.magnitude > 1.0) {
        throw std::invalid_argument{
            "FaultPlan: slowdown rate factor must be in (0, 1]"};
      }
      break;
    case FaultKind::kLinkFlap:
      if (event.magnitude < 0.0 || event.magnitude >= 1.0) {
        throw std::invalid_argument{
            "FaultPlan: loss fraction must be in [0, 1)"};
      }
      break;
    case FaultKind::kTokenTheft:
      if (event.magnitude < 0.0) {
        throw std::invalid_argument{"FaultPlan: stolen Gbit must be non-negative"};
      }
      break;
    case FaultKind::kNodeCrash:
    case FaultKind::kSpotRevocation:
      break;
  }
  // Insertion keeping time order, stable across equal times.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at_s < b.at_s; });
  events_.insert(pos, event);
  return *this;
}

FaultPlan& FaultPlan::crash(double at_s, std::size_t node) {
  return add({FaultKind::kNodeCrash, at_s, node, 0.0, 0.0});
}

FaultPlan& FaultPlan::revoke(double at_s, std::size_t node, double notice_s) {
  return add({FaultKind::kSpotRevocation, at_s, node, notice_s, 0.0});
}

FaultPlan& FaultPlan::slow_down(double at_s, std::size_t node, double duration_s,
                                double rate_factor) {
  return add({FaultKind::kTransientSlowdown, at_s, node, duration_s, rate_factor});
}

FaultPlan& FaultPlan::flap_link(double at_s, std::size_t node, double duration_s,
                                double loss_fraction) {
  return add({FaultKind::kLinkFlap, at_s, node, duration_s, loss_fraction});
}

FaultPlan& FaultPlan::steal_tokens(double at_s, std::size_t node, double gbit) {
  return add({FaultKind::kTokenTheft, at_s, node, 0.0, gbit});
}

std::vector<FaultEvent> FaultPlan::events_for_node(std::size_t node) const {
  std::vector<FaultEvent> out;
  for (const auto& e : events_) {
    if (e.node == node) out.push_back(e);
  }
  return out;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  if (events_.empty()) return "fault plan: (none)\n";
  os << "fault plan (" << events_.size() << " events):\n";
  for (const auto& e : events_) {
    os << "  t=" << e.at_s << "s node " << e.node << ' ' << to_string(e.kind);
    switch (e.kind) {
      case FaultKind::kSpotRevocation:
        os << " notice=" << e.duration_s << "s";
        break;
      case FaultKind::kTransientSlowdown:
        os << " factor=" << e.magnitude << " for " << e.duration_s << "s";
        break;
      case FaultKind::kLinkFlap:
        os << " loss=" << e.magnitude << " for " << e.duration_s << "s";
        break;
      case FaultKind::kTokenTheft:
        os << " stolen=" << e.magnitude << " Gbit";
        break;
      case FaultKind::kNodeCrash:
        break;
    }
    os << '\n';
  }
  return os.str();
}

FaultPlan FaultPlan::sample(const FaultPlanConfig& config, std::size_t nodes,
                            stats::Rng& rng) {
  if (nodes == 0) throw std::invalid_argument{"FaultPlan::sample: need nodes"};
  if (config.horizon_s <= 0.0) {
    throw std::invalid_argument{"FaultPlan::sample: horizon must be positive"};
  }
  FaultPlan plan;
  const auto arrivals = [&](double rate_per_hour, auto&& emit) {
    if (rate_per_hour <= 0.0) return;
    const double rate_per_s = rate_per_hour / 3600.0;
    double t = rng.exponential(rate_per_s);
    while (t < config.horizon_s) {
      emit(t);
      t += rng.exponential(rate_per_s);
    }
  };
  const auto victim = [&] {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
  };

  // Fixed kind order keeps the draw sequence — and therefore the sampled
  // plan — a pure function of the seed.
  arrivals(config.crash_rate_per_hour, [&](double t) { plan.crash(t, victim()); });
  arrivals(config.revocation_rate_per_hour, [&](double t) {
    plan.revoke(t, victim(), config.revocation_notice_s);
  });
  arrivals(config.slowdown_rate_per_hour, [&](double t) {
    const std::size_t node = victim();
    const double factor =
        rng.uniform(config.slowdown_factor_lo, config.slowdown_factor_hi);
    const double duration =
        rng.exponential(1.0 / config.slowdown_mean_duration_s);
    plan.slow_down(t, node, duration, factor);
  });
  arrivals(config.flap_rate_per_hour, [&](double t) {
    const std::size_t node = victim();
    const double loss = rng.uniform(config.flap_loss_lo, config.flap_loss_hi);
    const double duration = rng.exponential(1.0 / config.flap_mean_duration_s);
    plan.flap_link(t, node, duration, loss);
  });
  arrivals(config.theft_rate_per_hour, [&](double t) {
    const std::size_t node = victim();
    plan.steal_tokens(t, node, rng.exponential(1.0 / config.theft_mean_gbit));
  });
  return plan;
}

}  // namespace cloudrepro::faults
