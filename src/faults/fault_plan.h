#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace cloudrepro::faults {

/// The injectable fault classes. Each models a variance source the
/// reproducibility literature treats as first-class: hardware loss and spot
/// reclamation (long-horizon interruptions), transient contention, lossy
/// links, and the paper's own headline mechanism — token budgets drained by
/// traffic the experimenter never sent.
enum class FaultKind {
  kNodeCrash,         ///< The node dies immediately; in-flight work is lost.
  kSpotRevocation,    ///< Revocation notice: the node drains for `duration_s`
                      ///< (taking no new work), then dies.
  kTransientSlowdown, ///< The node's NIC runs at `magnitude` x line rate for
                      ///< `duration_s` seconds (degraded line_rate_gbps).
  kLinkFlap,          ///< Packet-loss burst: fraction `magnitude` of the
                      ///< node's egress is retransmitted for `duration_s`.
  kTokenTheft,        ///< A noisy neighbour burns `magnitude` Gbit of the
                      ///< node's token budget instantly.
};

const char* to_string(FaultKind kind) noexcept;

/// One scheduled fault. Times are job-relative simulated seconds: an engine
/// run applies the event when its own clock reaches `at_s`.
struct FaultEvent {
  FaultKind kind = FaultKind::kNodeCrash;
  double at_s = 0.0;
  std::size_t node = 0;
  double duration_s = 0.0;  ///< Window (slowdown/flap) or notice (revocation).
  double magnitude = 0.0;   ///< Rate factor, loss fraction, or stolen Gbit.
};

/// Arrival rates and magnitude distributions for `FaultPlan::sample`. Rates
/// are whole-cluster Poisson arrivals per hour of simulated time; the struck
/// node is drawn uniformly.
struct FaultPlanConfig {
  double horizon_s = 3600.0;

  double crash_rate_per_hour = 0.0;
  double revocation_rate_per_hour = 0.0;
  double slowdown_rate_per_hour = 0.0;
  double flap_rate_per_hour = 0.0;
  double theft_rate_per_hour = 0.0;

  double revocation_notice_s = 120.0;  ///< EC2-spot-style two-minute warning.
  double slowdown_factor_lo = 0.2;     ///< Degrade factor range (uniform).
  double slowdown_factor_hi = 0.8;
  double slowdown_mean_duration_s = 60.0;  ///< Exponential window length.
  double flap_loss_lo = 0.01;              ///< Loss fraction range (uniform).
  double flap_loss_hi = 0.20;
  double flap_mean_duration_s = 10.0;
  double theft_mean_gbit = 500.0;  ///< Exponential stolen budget.
};

/// An ordered, validated schedule of fault events. Plans are plain data:
/// building one never touches a cluster or network, so the same plan can be
/// replayed against any run — and, sampled from a seeded `stats::Rng`, the
/// whole fault history of an experiment is reproducible (F5.x).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Appends a validated event, keeping the schedule sorted by time
  /// (stable: ties retain insertion order). Throws std::invalid_argument on
  /// negative times/durations or out-of-range magnitudes.
  FaultPlan& add(FaultEvent event);

  // Convenience builders.
  FaultPlan& crash(double at_s, std::size_t node);
  FaultPlan& revoke(double at_s, std::size_t node, double notice_s = 120.0);
  FaultPlan& slow_down(double at_s, std::size_t node, double duration_s,
                       double rate_factor);
  FaultPlan& flap_link(double at_s, std::size_t node, double duration_s,
                       double loss_fraction);
  FaultPlan& steal_tokens(double at_s, std::size_t node, double gbit);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

  /// Events striking one node, in time order.
  std::vector<FaultEvent> events_for_node(std::size_t node) const;

  /// Human-readable schedule (one line per event) for reports and benches —
  /// "publish as much detail as possible" (F5.5).
  std::string describe() const;

  /// Samples a random plan: per-kind Poisson arrivals over the horizon,
  /// uniform victim nodes, configured magnitude distributions. Draw order is
  /// fixed (kinds in enum order, arrivals in time order), so the same seed
  /// always yields the same plan.
  static FaultPlan sample(const FaultPlanConfig& config, std::size_t nodes,
                          stats::Rng& rng);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace cloudrepro::faults
