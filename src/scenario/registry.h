#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.h"

namespace cloudrepro::scenario {

/// Named catalog of scenarios plus named suites (ordered lists of scenario
/// names). `builtin()` is the read-only catalog covering the paper's
/// figure/table experiments; benches and the `cloudrepro` CLI pull their
/// grids from it instead of hard-coding sweeps.
class ScenarioRegistry {
 public:
  ScenarioRegistry() = default;

  /// The built-in catalog: Figures 13 and 15-19, Table 4, the CI smoke
  /// scenario, and the extension scenarios (TPC-H, fault mitigation).
  /// Constructed once; every spec is validated at construction.
  static const ScenarioRegistry& builtin();

  /// Adds a scenario; throws std::invalid_argument on duplicate names or
  /// invalid specs.
  void add(ScenarioSpec spec);

  /// Adds a suite; every referenced scenario must already exist.
  void add_suite(std::string suite_name, std::vector<std::string> scenario_names);

  const ScenarioSpec* find(std::string_view name) const noexcept;
  /// Throws std::out_of_range with the known names listed.
  const ScenarioSpec& at(std::string_view name) const;

  /// Scenario names in catalog (insertion) order.
  std::vector<std::string> names() const;
  const std::vector<ScenarioSpec>& scenarios() const noexcept { return scenarios_; }

  const std::map<std::string, std::vector<std::string>>& suites() const noexcept {
    return suites_;
  }
  /// Scenario names of one suite; throws std::out_of_range when unknown.
  const std::vector<std::string>& suite(std::string_view name) const;

 private:
  std::vector<ScenarioSpec> scenarios_;  ///< Catalog order (stable for `list`).
  std::map<std::string, std::size_t, std::less<>> index_;
  std::map<std::string, std::vector<std::string>> suites_;
};

}  // namespace cloudrepro::scenario
