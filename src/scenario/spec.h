#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/json.h"

namespace cloudrepro::scenario {

/// Version tag of the ScenarioSpec wire format *and* of the content-hash
/// domain. Bump whenever the meaning of a serialized field changes; hashes
/// from different versions never collide because the version is mixed into
/// the hashed bytes.
/// Version 2: ConfirmSpec gained `adaptive` + `min_repetitions` (adaptive
/// CONFIRM stopping), which change which measurements a scenario runs.
inline constexpr int kSpecSchemaVersion = 2;

/// Which cloud's QoS mechanism shapes every node's egress (Section 3 of the
/// paper identifies one per provider).
enum class CloudModel {
  /// Every node gets an identical copy of the EC2 c5.xlarge *nominal* token
  /// bucket — the controlled emulation of Figures 15-19 (no incarnation
  /// scatter, so budget effects are isolated).
  kUniformTokenBucket,
  /// Fresh EC2 c5.xlarge incarnations per repetition: per-VM bucket draws
  /// (Figure 11 scatter).
  kEc2,
  /// Google Cloud 8-core per-core QoS incarnations.
  kGce,
  /// HPCCloud stochastic contention (no QoS enforcement).
  kHpcCloud,
};

const char* to_string(CloudModel model) noexcept;
std::optional<CloudModel> cloud_model_from_string(std::string_view name) noexcept;

struct ClusterSpec {
  CloudModel model = CloudModel::kUniformTokenBucket;
  int nodes = 12;
  int cores_per_node = 16;
  /// Physical line rate for uniform-token-bucket clusters (the cloud-profile
  /// models carry their own line rates).
  double line_rate_gbps = 10.0;
};

struct EngineSpec {
  double partition_skew = 0.0;
  bool stable_partitioning = true;
  double machine_noise_cv = 0.0;
  /// Opt-in speculative re-execution of straggling transfers.
  bool speculation = false;
};

/// Poisson fault-arrival rates handed to `faults::FaultPlan::sample` per
/// repetition (each repetition samples its plan from its own RNG stream, so
/// fault histories are reproducible and thread-count independent).
struct FaultSpec {
  bool enabled = false;
  double horizon_s = 3600.0;
  double crash_rate_per_hour = 0.0;
  double revocation_rate_per_hour = 0.0;
  double slowdown_rate_per_hour = 0.0;
  double flap_rate_per_hour = 0.0;
  double theft_rate_per_hour = 0.0;
};

/// One workload of the scenario grid. `suite` is one of "hibench",
/// "hibench-ext", "tpcds", "tpch"; `name` the profile name within it ("TS",
/// "Q65", ...). `cloud` overrides the scenario's cluster model for this
/// workload's cells — how Figure 13 runs K-Means on Google Cloud and Q65 on
/// HPCCloud inside one scenario.
struct WorkloadRef {
  std::string suite;
  std::string name;
  std::optional<CloudModel> cloud;
};

/// Optional per-cell CONFIRM analysis over the repetition sequence. With
/// `adaptive` set, the analysis becomes the *stopping rule*: each cell runs
/// until its quantile-CI relative half-width meets `error_bound` (or the
/// scenario's `repetitions` cap), instead of a fixed repetition count.
struct ConfirmSpec {
  bool enabled = false;
  double quantile = 0.5;
  double confidence = 0.95;
  double error_bound = 0.01;
  bool adaptive = false;
  /// Adaptive mode: never stop a cell before this many repetitions.
  int min_repetitions = 0;
};

/// A declarative, hashable description of one campaign-shaped experiment:
/// cloud model x workload grid x treatment (token budget) x repetitions,
/// plus engine, fault, and analysis knobs. Everything the measured values
/// are a function of lives here; everything that is *not* (thread count,
/// journal paths, observability sinks) deliberately does not.
///
/// Repetitions are i.i.d. by construction — fresh cluster and engine per
/// repetition, per-repetition RNG streams — which is the paper's own F5.4
/// guideline. The sequence-effect pathologies (Figures 15, 18, 19's
/// carry-over) remain bench-rendered narratives; the catalog records the
/// grids they sweep.
struct ScenarioSpec {
  // Cosmetic identity: registry key and display strings. NOT part of the
  // content hash — renaming a scenario must not invalidate its cache.
  std::string name;
  std::string title;
  std::string paper_ref;

  ClusterSpec cluster;
  EngineSpec engine;
  std::vector<WorkloadRef> workloads;
  /// Treatment axis: initial token budgets in Gbit. Empty = one "nominal"
  /// treatment (no budget override). Ignored by cells whose cloud model has
  /// no budget-tracked policy.
  std::vector<double> budgets;
  int repetitions = 10;
  bool randomize_order = false;
  double confidence = 0.95;
  /// Default master seed. Part of the *serialization* but not of the
  /// content hash: the result cache keys on (hash, seed, schema) so one
  /// scenario caches independently per seed.
  std::uint64_t seed = 20200225;
  FaultSpec faults;
  ConfirmSpec confirm;

  // --- Derived shape ---------------------------------------------------
  std::size_t treatment_count() const noexcept {
    return budgets.empty() ? 1 : budgets.size();
  }
  std::size_t cell_count() const noexcept {
    return workloads.size() * treatment_count();
  }
  std::size_t total_measurements() const noexcept {
    return cell_count() * static_cast<std::size_t>(repetitions);
  }
  /// Treatment label of column t: "budget=<canonical>" or "nominal".
  std::string treatment_label(std::size_t t) const;

  // --- Serialization ----------------------------------------------------
  /// Full document (cosmetic fields + "schema" version + seed).
  Json to_json() const;
  /// Inverse of `to_json`; validates and throws JsonError on malformed or
  /// out-of-range input. Unknown fields are rejected (a typoed knob must
  /// not silently fall back to a default and then hash differently).
  static ScenarioSpec from_json(const Json& json);
  static ScenarioSpec parse(std::string_view json_text);
  std::string canonical_json() const;

  // --- Content hash -----------------------------------------------------
  /// Canonical JSON of the semantic fields only (no name/title/paper_ref,
  /// no seed).
  Json semantic_json() const;
  /// SHA-256 over a version-tagged prefix + `semantic_json().canonical()`.
  /// Field order and whitespace of any source text cannot affect it;
  /// changing any semantic field does.
  std::string content_hash() const;

  /// Structural validation (counts positive, rates non-negative, known
  /// workload suites, ...). Throws JsonError with a field-naming message.
  void validate() const;
};

}  // namespace cloudrepro::scenario
