#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "scenario/result_store.h"
#include "scenario/spec.h"

namespace cloudrepro::bigdata {
struct WorkloadProfile;
}  // namespace cloudrepro::bigdata

namespace cloudrepro::scenario {

/// Resolves a workload reference against the built-in suites
/// (hibench / hibench-ext / tpcds / tpch); throws std::out_of_range with
/// the suite's known names when absent. The returned reference has static
/// storage duration.
const bigdata::WorkloadProfile& resolve_workload(const WorkloadRef& ref);

/// Materializes the scenario grid as campaign cells, workloads outer and
/// treatments inner — cell index = w * treatment_count + t. Every cell's
/// `run_once` builds a fresh cluster and engine from its repetition RNG
/// stream, so cells are thread-safe and the campaign is bit-identical at
/// any thread count.
std::vector<core::CampaignCell> build_cells(const ScenarioSpec& spec);

/// The campaign options a scenario pins (repetitions, order, confidence).
/// Runtime knobs (threads, journal, max_measurements) stay at their
/// defaults for the caller to fill in.
core::CampaignOptions campaign_options(const ScenarioSpec& spec);

/// Canonical summary bytes for a finished (or interrupted) campaign:
/// per-cell robust statistics, optional per-cell CONFIRM analysis, and the
/// provenance triple (scenario hash, seed, result schema version). A pure
/// function of the campaign *values* — never of thread count, cache state,
/// or wall time — which is what makes "second run emits byte-identical
/// output" checkable with `cmp`.
std::string summary_json(const ScenarioSpec& spec, std::uint64_t seed,
                         const core::CampaignResult& result);

struct RunOptions {
  /// Campaign worker threads: 1 = serial reference, 0 = all cores.
  int threads = 1;
  /// External worker pool shared across scenarios — `run_suite`'s thread
  /// budget. When set it overrides `threads` and the campaign submits its
  /// (cell, repetition) tasks there; the pool's work-stealing deques keep
  /// every worker busy even when one scenario's cells finish early. Never
  /// part of any cache key: scheduling does not change what a scenario
  /// computes.
  runtime::ThreadPool* pool = nullptr;
  /// Master seed; defaults to the spec's.
  std::optional<std::uint64_t> seed;
  /// Result cache; nullptr disables journaling and summary reuse.
  ResultStore* store = nullptr;
  /// Force a journal replay even when a complete summary exists — used when
  /// the caller needs the raw per-repetition values (CSV export), which the
  /// summary alone cannot provide. Still executes zero new measurements on
  /// a full hit.
  bool need_values = false;
  /// Stop after this many new measurements (0 = unlimited); the journal
  /// keeps the prefix for a later resume.
  int max_measurements = 0;
  /// Cooperative cancellation (SIGINT/SIGTERM): threaded through to
  /// `core::CampaignOptions::cancel`. In-flight measurements finish and are
  /// journaled; the summary is not published; a later run resumes.
  const std::atomic<bool>* cancel = nullptr;
  /// Filesystem the campaign journal goes through; null = real. Pass the
  /// same `FaultVfs` the store was built with when torturing the whole
  /// stack.
  io::Vfs* vfs = nullptr;
  /// Campaign instrumentation sink (counters/histograms); independent of the
  /// store's registry, though callers usually pass the same one.
  obs::MetricsRegistry* metrics = nullptr;
  /// Single-flight wait policy when another live process holds the entry's
  /// lock: poll up to `lock_wait_attempts` times, `lock_wait_ms` apart, for
  /// either the holder's published summary (read-through) or the lock.
  /// Exhausting the budget throws. 600 x 100ms = one minute.
  int lock_wait_attempts = 600;
  int lock_wait_ms = 100;
};

struct ScenarioRunResult {
  /// Empty (no cells) when the run was served from the cached summary.
  core::CampaignResult campaign;
  std::string summary;  ///< Canonical summary bytes.
  ResultStore::HitState hit_state = ResultStore::HitState::kMiss;
  bool from_cached_summary = false;
  std::size_t executed_measurements = 0;  ///< Fresh runs this invocation.
  std::size_t resumed_measurements = 0;   ///< Reused from the cache journal.
  std::size_t total_measurements = 0;
  bool complete = true;
};

/// Runs one scenario end to end: cache lookup, campaign execution or resume
/// through the store's journal, summary generation, and summary publication
/// on completion. With a store, a complete entry is served without
/// executing anything; a partial entry re-runs only the remainder.
///
/// Concurrency: execution is single-flight per (spec hash, seed). The
/// store's lock file admits one executor; a second `run_scenario` against
/// the same entry waits (bounded, see `RunOptions`) and, when the holder
/// publishes the summary, serves it without executing anything — the
/// exactly-once guarantee two concurrent `cloudrepro` processes rely on.
///
/// Integrity: a journal whose header fails the verbatim check
/// (`core::JournalMismatch` — older build, different grid) evicts the entry
/// and redoes the campaign cold; a corrupt journal *tail* is truncated and
/// only its measurements re-run; a corrupt summary is evicted and the
/// journal resumed. Real I/O errors (ENOSPC, EIO) always propagate.
ScenarioRunResult run_scenario(const ScenarioSpec& spec, const RunOptions& options = {});

struct SuiteRunResult {
  /// One entry per spec, in member (not completion) order.
  std::vector<ScenarioRunResult> members;
  /// False when any executed member was interrupted (budget, cancellation).
  bool complete = true;
};

/// Called once per member, in member order, as soon as that member and all
/// its predecessors have finished — the ordered-emission seam that keeps a
/// suite's streamed output byte-identical at any thread count.
using SuiteMemberCallback =
    std::function<void(std::size_t, const ScenarioRunResult&)>;

/// Runs every scenario of a suite against one shared thread budget.
///
/// With an effective thread count of 1 (and no external pool) the members
/// run serially in order — the byte-for-byte reference. Otherwise one
/// work-stealing pool of `threads` workers is shared by all members: each
/// member gets a coordinator thread (its single-flight admission, journal
/// writing, and summary generation), and every member's (cell, repetition)
/// tasks land in the same pool, so a scenario with long cells no longer
/// serializes the suite behind it — idle workers steal the stragglers.
/// Because each campaign's values land in pre-assigned slots and summaries
/// are pure functions of those values, `members` — and anything emitted via
/// `on_member` — is byte-identical to the serial reference.
///
/// Exceptions: the first failing member (by member order) is rethrown after
/// every coordinator has joined; `on_member` fires only for the members
/// before it, exactly as if the serial loop had thrown there.
SuiteRunResult run_suite(const std::vector<ScenarioSpec>& specs,
                         const RunOptions& options = {},
                         const SuiteMemberCallback& on_member = {});

}  // namespace cloudrepro::scenario
