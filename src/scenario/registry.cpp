#include "scenario/registry.h"

#include <stdexcept>

namespace cloudrepro::scenario {

namespace {

/// NSDI '20 day one — the same fixed seed every bench binary uses
/// (bench_common.h), so registry-driven benches print the numbers they
/// always printed.
constexpr std::uint64_t kPaperSeed = 20200225;

std::vector<WorkloadRef> hibench_five() {
  return {{"hibench", "TS", {}},
          {"hibench", "WC", {}},
          {"hibench", "S", {}},
          {"hibench", "BS", {}},
          {"hibench", "KM", {}}};
}

std::vector<WorkloadRef> tpcds_all() {
  std::vector<WorkloadRef> refs;
  for (const int q : {3, 7, 19, 27, 34, 42, 43, 46, 52, 53, 55, 59, 63,
                      65, 68, 70, 73, 79, 82, 89, 98}) {
    refs.push_back({"tpcds", "Q" + std::to_string(q), {}});
  }
  return refs;
}

ScenarioRegistry build_builtin() {
  ScenarioRegistry registry;

  {
    // Figure 13 runs *directly on the clouds*: per-VM incarnation draws and
    // non-network machine noise entangled with the QoS effects.
    ScenarioSpec s;
    s.name = "fig13-confirm";
    s.title = "CONFIRM analysis: repetitions until 95% CIs reach a 1% bound";
    s.paper_ref = "Figure 13";
    s.cluster.model = CloudModel::kGce;
    s.workloads = {{"hibench", "KM", CloudModel::kGce},
                   {"tpcds", "Q65", CloudModel::kHpcCloud}};
    s.engine.machine_noise_cv = 0.06;
    s.repetitions = 100;
    s.confirm.enabled = true;
    s.confirm.error_bound = 0.01;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    ScenarioSpec s;
    s.name = "fig15-terasort-budget";
    s.title = "Terasort runtime vs initial token budget";
    s.paper_ref = "Figure 15";
    s.workloads = {{"hibench", "TS", {}}};
    s.budgets = {5000.0, 1000.0, 100.0, 10.0};
    s.repetitions = 5;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    // Must mirror bench_fig16_hibench_budget exactly: the bench pulls this
    // entry and its golden file pins the resulting numbers.
    ScenarioSpec s;
    s.name = "fig16-hibench-budget";
    s.title = "HiBench runtime and variability vs initial token budget";
    s.paper_ref = "Figure 16";
    s.workloads = hibench_five();
    s.budgets = {5000.0, 1000.0, 100.0, 10.0};
    s.repetitions = 10;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    ScenarioSpec s;
    s.name = "fig17-tpcds-budget";
    s.title = "TPC-DS query sensitivity to the token budget";
    s.paper_ref = "Figure 17";
    s.workloads = tpcds_all();
    s.budgets = {5000.0, 1000.0, 100.0, 10.0};
    s.repetitions = 10;
    s.engine.partition_skew = 0.5;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    ScenarioSpec s;
    s.name = "fig18-straggler";
    s.title = "TPC-DS Q65 under the straggler-inducing budget and skew";
    s.paper_ref = "Figure 18";
    s.workloads = {{"tpcds", "Q65", {}}};
    s.budgets = {2500.0};
    s.repetitions = 18;
    s.engine.partition_skew = 0.6;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    ScenarioSpec s;
    s.name = "fig19-budget-depletion";
    s.title = "Median estimates across the depleting token-budget schedule";
    s.paper_ref = "Figure 19";
    s.workloads = {{"tpcds", "Q82", {}}, {"tpcds", "Q65", {}}};
    s.budgets = {5000.0, 2500.0, 1000.0, 100.0, 10.0};
    s.repetitions = 10;
    s.engine.partition_skew = 0.5;
    s.confirm.enabled = true;
    s.confirm.error_bound = 0.10;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    ScenarioSpec s;
    s.name = "table4-setup";
    s.title = "The Section 4 setup: HiBench + TPC-DS, 12x16 token-bucket cluster";
    s.paper_ref = "Table 4";
    s.workloads = hibench_five();
    for (auto& q : tpcds_all()) s.workloads.push_back(std::move(q));
    s.repetitions = 10;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    // Beyond the paper: the TPC-H-style short-query suite under a
    // full-vs-depleted budget contrast.
    ScenarioSpec s;
    s.name = "tpch-budget";
    s.title = "TPC-H short-query suite, full vs depleted budget";
    s.paper_ref = "extension";
    for (const int q : {1, 3, 5, 6, 9, 13, 18, 21}) {
      s.workloads.push_back({"tpch", "Q" + std::to_string(q), {}});
    }
    s.budgets = {5000.0, 100.0};
    s.repetitions = 10;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    // Beyond the paper: does speculation keep the CI tight when nodes
    // degrade and budgets are stolen mid-run?
    ScenarioSpec s;
    s.name = "fault-mitigation";
    s.title = "Terasort under injected faults with speculation enabled";
    s.paper_ref = "extension";
    s.workloads = {{"hibench", "TS", {}}};
    s.budgets = {2500.0};
    s.repetitions = 10;
    s.engine.partition_skew = 0.3;
    s.engine.speculation = true;
    s.faults.enabled = true;
    s.faults.horizon_s = 3600.0;
    s.faults.slowdown_rate_per_hour = 6.0;
    s.faults.flap_rate_per_hour = 4.0;
    s.faults.theft_rate_per_hour = 6.0;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    // Small enough for the CI cache-smoke job to run twice in seconds.
    ScenarioSpec s;
    s.name = "ci-smoke";
    s.title = "Tiny grid exercising the full run/cache/summary path";
    s.paper_ref = "CI";
    s.workloads = {{"hibench", "TS", {}}, {"hibench", "KM", {}}};
    s.budgets = {5000.0, 10.0};
    s.repetitions = 3;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  {
    // Adaptive CONFIRM stopping end-to-end: a noisy single-workload cell
    // that reaches its (loose) CI bound well before the repetition cap, so
    // the CI job exercises a journaled adaptive stop on every run.
    ScenarioSpec s;
    s.name = "ci-adaptive";
    s.title = "Adaptive CONFIRM stop: run until the median CI meets the bound";
    s.paper_ref = "CI";
    s.workloads = {{"hibench", "TS", {}}};
    s.budgets = {5000.0};
    s.engine.machine_noise_cv = 0.05;
    s.repetitions = 40;  // Cap, not target: the stopping rule decides.
    s.confirm.enabled = true;
    s.confirm.adaptive = true;
    s.confirm.error_bound = 0.10;
    s.confirm.min_repetitions = 8;
    s.seed = kPaperSeed;
    registry.add(std::move(s));
  }

  registry.add_suite("paper-figures",
                     {"fig13-confirm", "fig15-terasort-budget", "fig16-hibench-budget",
                      "fig17-tpcds-budget", "fig18-straggler", "fig19-budget-depletion",
                      "table4-setup"});
  registry.add_suite("budget-sweeps",
                     {"fig15-terasort-budget", "fig16-hibench-budget",
                      "fig17-tpcds-budget", "fig18-straggler", "fig19-budget-depletion"});
  registry.add_suite("extensions", {"tpch-budget", "fault-mitigation"});
  registry.add_suite("ci", {"ci-smoke", "ci-adaptive"});
  return registry;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = build_builtin();
  return registry;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  spec.validate();
  if (index_.contains(spec.name)) {
    throw std::invalid_argument{"ScenarioRegistry: duplicate scenario \"" +
                                spec.name + "\""};
  }
  index_.emplace(spec.name, scenarios_.size());
  scenarios_.push_back(std::move(spec));
}

void ScenarioRegistry::add_suite(std::string suite_name,
                                 std::vector<std::string> scenario_names) {
  for (const auto& n : scenario_names) {
    if (!index_.contains(n)) {
      throw std::invalid_argument{"ScenarioRegistry: suite \"" + suite_name +
                                  "\" references unknown scenario \"" + n + "\""};
    }
  }
  if (!suites_.emplace(std::move(suite_name), std::move(scenario_names)).second) {
    throw std::invalid_argument{"ScenarioRegistry: duplicate suite"};
  }
}

const ScenarioSpec* ScenarioRegistry::find(std::string_view name) const noexcept {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &scenarios_[it->second];
}

const ScenarioSpec& ScenarioRegistry::at(std::string_view name) const {
  if (const ScenarioSpec* spec = find(name)) return *spec;
  std::string known;
  for (const auto& s : scenarios_) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw std::out_of_range{"unknown scenario \"" + std::string{name} +
                          "\" (known: " + known + ")"};
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.name);
  return out;
}

const std::vector<std::string>& ScenarioRegistry::suite(std::string_view name) const {
  const auto it = suites_.find(std::string{name});
  if (it == suites_.end()) {
    throw std::out_of_range{"unknown suite \"" + std::string{name} + "\""};
  }
  return it->second;
}

}  // namespace cloudrepro::scenario
