#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cloudrepro::scenario {

/// Minimal JSON document model for the scenario catalog. Three properties
/// matter more than generality:
///
///  1. **Canonical serialization.** Objects are stored in a sorted map and
///     written with no whitespace, so two documents with the same fields in
///     any order and any formatting serialize to the same bytes — the basis
///     of the content hash.
///  2. **Round-trip numbers.** Doubles are written with the shortest
///     representation that parses back to the same binary64
///     (std::to_chars), integers as integers; parse(canonical(x)) == x.
///  3. **No dependencies.** The container image ships no JSON library; this
///     one is ~300 lines and exactly as strict as the catalog needs.
class Json;

using JsonArray = std::vector<Json>;
/// std::map (not unordered) so iteration — and thus serialization — is
/// always key-sorted.
using JsonObject = std::map<std::string, Json>;

struct JsonError : std::runtime_error {
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUInt, kDouble, kString, kArray, kObject };

  Json() noexcept : type_(Type::kNull) {}
  Json(std::nullptr_t) noexcept : type_(Type::kNull) {}
  Json(bool b) noexcept : type_(Type::kBool), bool_(b) {}
  Json(int v) noexcept : type_(Type::kInt), int_(v) {}
  Json(std::int64_t v) noexcept : type_(Type::kInt), int_(v) {}
  Json(std::uint64_t v) noexcept : type_(Type::kUInt), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kUInt || type_ == Type::kDouble;
  }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const;
  /// Numeric accessors convert between the three numeric storage types;
  /// they throw JsonError on non-numbers and on out-of-range conversions
  /// (e.g. as_uint() of a negative, as_int() of 2^63).
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object field lookup: nullptr when absent (or not an object).
  const Json* find(std::string_view key) const noexcept;
  /// Object field access; throws JsonError when absent.
  const Json& at(std::string_view key) const;
  /// Object insert-or-access (turns a null value into an empty object).
  Json& operator[](const std::string& key);

  /// Array append (turns a null value into an empty array).
  void push_back(Json value);

  bool operator==(const Json& other) const noexcept;

  /// Canonical bytes: key-sorted objects, no whitespace, shortest
  /// round-trip numbers. Throws JsonError on non-finite doubles (canonical
  /// JSON has no NaN/Infinity).
  std::string canonical() const;
  void write(std::ostream& os) const;

  /// Strict parser: one complete value, trailing whitespace only.
  static Json parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Canonical formatting of one double (shortest round-trip, "-0" normalized
/// to "0"); shared with the summary writer so every exported number uses
/// the same bytes. Throws JsonError on non-finite values.
std::string canonical_double(double value);

}  // namespace cloudrepro::scenario
