#include "scenario/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cloudrepro::scenario {

namespace {

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  static const char* names[] = {"null", "bool",   "int",   "uint",
                                "double", "string", "array", "object"};
  throw JsonError{std::string{"json: expected "} + wanted + ", have " +
                  names[static_cast<int>(got)]};
}

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const unsigned char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
}

/// Recursive-descent parser over a string_view with a single cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError{"json parse error at offset " + std::to_string(pos_) + ": " + why};
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string{"expected '"} + c + "'");
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("bad literal");
    pos_ += lit.size();
  }

  /// Containers recurse through parse_value; adversarial input like 100k
  /// unclosed '[' must fail with JsonError, not a stack overflow. Our own
  /// documents nest a handful of levels deep.
  static constexpr int kMaxDepth = 64;

  Json parse_value() {
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    ++depth_;
    skip_ws();
    Json value = [&] {
      switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return Json{parse_string()};
        case 't': expect_literal("true"); return Json{true};
        case 'f': expect_literal("false"); return Json{false};
        case 'n': expect_literal("null"); return Json{nullptr};
        default: return parse_number();
      }
    }();
    --depth_;
    return value;
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    skip_ws();
    if (consume('}')) return Json{std::move(object)};
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!object.emplace(std::move(key), parse_value()).second) {
        fail("duplicate object key");
      }
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return Json{std::move(object)};
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    skip_ws();
    if (consume(']')) return Json{std::move(array)};
    for (;;) {
      array.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return Json{std::move(array)};
    }
  }

  void append_utf8(std::string& out, unsigned long cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned long parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned long value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned long>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned long>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned long>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned long cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const unsigned long lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = pos_ > start + (text_[start] == '-' ? 1 : 0);
    if (!integral) fail("bad number");
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      if (consume('.')) {
        const std::size_t frac = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        if (pos_ == frac) fail("bad number: missing fraction digits");
      }
      if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
        const std::size_t exp = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        if (pos_ == exp) fail("bad number: missing exponent digits");
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      if (token[0] == '-') {
        std::int64_t v = 0;
        const auto [p, ec] = std::from_chars(token.begin(), token.end(), v);
        if (ec == std::errc{} && p == token.end()) return Json{v};
      } else {
        std::uint64_t v = 0;
        const auto [p, ec] = std::from_chars(token.begin(), token.end(), v);
        if (ec == std::errc{} && p == token.end()) {
          // Small non-negative integers stay kInt so 3 == 3 regardless of
          // whether the value came from an int or size_t constructor.
          if (v <= static_cast<std::uint64_t>(INT64_MAX)) {
            return Json{static_cast<std::int64_t>(v)};
          }
          return Json{v};
        }
      }
      // Integer out of 64-bit range: fall through to double.
    }
    double v = 0.0;
    const auto [p, ec] = std::from_chars(token.begin(), token.end(), v);
    if (ec != std::errc{} || p != token.end()) fail("number out of range");
    return Json{v};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string canonical_double(double value) {
  if (!std::isfinite(value)) {
    throw JsonError{"json: non-finite double has no canonical form"};
  }
  if (value == 0.0) return "0";  // Normalizes -0.
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw JsonError{"json: double formatting failed"};
  return std::string{buf, end};
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  switch (type_) {
    case Type::kInt: return int_;
    case Type::kUInt:
      if (uint_ > static_cast<std::uint64_t>(INT64_MAX)) {
        throw JsonError{"json: uint value out of int64 range"};
      }
      return static_cast<std::int64_t>(uint_);
    default: type_error("integer", type_);
  }
}

std::uint64_t Json::as_uint() const {
  switch (type_) {
    case Type::kUInt: return uint_;
    case Type::kInt:
      if (int_ < 0) throw JsonError{"json: negative value out of uint64 range"};
      return static_cast<std::uint64_t>(int_);
    default: type_error("unsigned integer", type_);
  }
}

double Json::as_double() const {
  switch (type_) {
    case Type::kDouble: return double_;
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUInt: return static_cast<double>(uint_);
    default: type_error("number", type_);
  }
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

JsonArray& Json::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

JsonObject& Json::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(std::string{key});
  return it == object_.end() ? nullptr : &it->second;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (!found) throw JsonError{"json: missing field \"" + std::string{key} + "\""};
  return *found;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  return object_[key];
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

bool Json::operator==(const Json& other) const noexcept {
  if (is_number() && other.is_number()) {
    // Numeric equality across storage types; integer/integer compares
    // exactly, anything involving a double compares as double.
    if (type_ != Type::kDouble && other.type_ != Type::kDouble) {
      const bool neg_a = type_ == Type::kInt && int_ < 0;
      const bool neg_b = other.type_ == Type::kInt && other.int_ < 0;
      if (neg_a != neg_b) return false;
      if (neg_a) return int_ == other.int_;
      const std::uint64_t a = type_ == Type::kInt ? static_cast<std::uint64_t>(int_) : uint_;
      const std::uint64_t b =
          other.type_ == Type::kInt ? static_cast<std::uint64_t>(other.int_) : other.uint_;
      return a == b;
    }
    return as_double() == other.as_double();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
    default: return false;  // Numbers handled above.
  }
}

void Json::write(std::ostream& os) const {
  switch (type_) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (bool_ ? "true" : "false"); break;
    case Type::kInt: os << int_; break;
    case Type::kUInt: os << uint_; break;
    case Type::kDouble: os << canonical_double(double_); break;
    case Type::kString: write_escaped(os, string_); break;
    case Type::kArray: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        array_[i].write(os);
      }
      os << ']';
      break;
    }
    case Type::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) os << ',';
        first = false;
        write_escaped(os, key);
        os << ':';
        value.write(os);
      }
      os << '}';
      break;
    }
  }
}

std::string Json::canonical() const {
  std::ostringstream ss;
  write(ss);
  return ss.str();
}

Json Json::parse(std::string_view text) { return Parser{text}.parse_document(); }

}  // namespace cloudrepro::scenario
