#include "scenario/spec.h"

#include <set>

#include "scenario/sha256.h"

namespace cloudrepro::scenario {

namespace {

[[noreturn]] void spec_error(const std::string& what) {
  throw JsonError{"scenario spec: " + what};
}

/// Rejects unknown keys so a typoed knob fails loudly instead of silently
/// hashing as the default.
void check_known_keys(const Json& object, const char* where,
                      std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    bool ok = false;
    for (const auto k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) spec_error(std::string{"unknown field \""} + key + "\" in " + where);
  }
}

double get_double(const Json& object, const char* key, double fallback) {
  const Json* field = object.find(key);
  return field ? field->as_double() : fallback;
}

bool get_bool(const Json& object, const char* key, bool fallback) {
  const Json* field = object.find(key);
  return field ? field->as_bool() : fallback;
}

int get_int(const Json& object, const char* key, int fallback) {
  const Json* field = object.find(key);
  if (!field) return fallback;
  const std::int64_t v = field->as_int();
  if (v < INT32_MIN || v > INT32_MAX) {
    spec_error(std::string{"field \""} + key + "\" out of int range");
  }
  return static_cast<int>(v);
}

std::string get_string(const Json& object, const char* key,
                       const std::string& fallback) {
  const Json* field = object.find(key);
  return field ? field->as_string() : fallback;
}

CloudModel parse_cloud_model(const Json& value) {
  const auto model = cloud_model_from_string(value.as_string());
  if (!model) spec_error("unknown cloud model \"" + value.as_string() + "\"");
  return *model;
}

}  // namespace

const char* to_string(CloudModel model) noexcept {
  switch (model) {
    case CloudModel::kUniformTokenBucket: return "uniform-token-bucket";
    case CloudModel::kEc2: return "ec2";
    case CloudModel::kGce: return "gce";
    case CloudModel::kHpcCloud: return "hpccloud";
  }
  return "?";
}

std::optional<CloudModel> cloud_model_from_string(std::string_view name) noexcept {
  if (name == "uniform-token-bucket") return CloudModel::kUniformTokenBucket;
  if (name == "ec2") return CloudModel::kEc2;
  if (name == "gce") return CloudModel::kGce;
  if (name == "hpccloud") return CloudModel::kHpcCloud;
  return std::nullopt;
}

std::string ScenarioSpec::treatment_label(std::size_t t) const {
  if (budgets.empty()) return "nominal";
  return "budget=" + canonical_double(budgets.at(t));
}

Json ScenarioSpec::semantic_json() const {
  JsonObject cluster_json;
  cluster_json["model"] = Json{to_string(cluster.model)};
  cluster_json["nodes"] = Json{static_cast<std::int64_t>(cluster.nodes)};
  cluster_json["cores_per_node"] = Json{static_cast<std::int64_t>(cluster.cores_per_node)};
  cluster_json["line_rate_gbps"] = Json{cluster.line_rate_gbps};

  JsonObject engine_json;
  engine_json["partition_skew"] = Json{engine.partition_skew};
  engine_json["stable_partitioning"] = Json{engine.stable_partitioning};
  engine_json["machine_noise_cv"] = Json{engine.machine_noise_cv};
  engine_json["speculation"] = Json{engine.speculation};

  JsonArray workloads_json;
  for (const auto& w : workloads) {
    JsonObject ref;
    ref["suite"] = Json{w.suite};
    ref["name"] = Json{w.name};
    if (w.cloud) ref["cloud"] = Json{to_string(*w.cloud)};
    workloads_json.push_back(Json{std::move(ref)});
  }

  JsonArray budgets_json;
  for (const double b : budgets) budgets_json.push_back(Json{b});

  JsonObject faults_json;
  faults_json["enabled"] = Json{faults.enabled};
  faults_json["horizon_s"] = Json{faults.horizon_s};
  faults_json["crash_rate_per_hour"] = Json{faults.crash_rate_per_hour};
  faults_json["revocation_rate_per_hour"] = Json{faults.revocation_rate_per_hour};
  faults_json["slowdown_rate_per_hour"] = Json{faults.slowdown_rate_per_hour};
  faults_json["flap_rate_per_hour"] = Json{faults.flap_rate_per_hour};
  faults_json["theft_rate_per_hour"] = Json{faults.theft_rate_per_hour};

  JsonObject confirm_json;
  confirm_json["enabled"] = Json{confirm.enabled};
  confirm_json["quantile"] = Json{confirm.quantile};
  confirm_json["confidence"] = Json{confirm.confidence};
  confirm_json["error_bound"] = Json{confirm.error_bound};
  confirm_json["adaptive"] = Json{confirm.adaptive};
  confirm_json["min_repetitions"] = Json{static_cast<std::int64_t>(confirm.min_repetitions)};

  JsonObject root;
  root["cluster"] = Json{std::move(cluster_json)};
  root["engine"] = Json{std::move(engine_json)};
  root["workloads"] = Json{std::move(workloads_json)};
  root["budgets"] = Json{std::move(budgets_json)};
  root["repetitions"] = Json{static_cast<std::int64_t>(repetitions)};
  root["randomize_order"] = Json{randomize_order};
  root["confidence"] = Json{confidence};
  root["faults"] = Json{std::move(faults_json)};
  root["confirm"] = Json{std::move(confirm_json)};
  return Json{std::move(root)};
}

Json ScenarioSpec::to_json() const {
  Json root = semantic_json();
  root["schema"] = Json{static_cast<std::int64_t>(kSpecSchemaVersion)};
  root["name"] = Json{name};
  if (!title.empty()) root["title"] = Json{title};
  if (!paper_ref.empty()) root["paper_ref"] = Json{paper_ref};
  root["seed"] = Json{seed};
  return root;
}

ScenarioSpec ScenarioSpec::from_json(const Json& json) {
  check_known_keys(json, "scenario",
                   {"schema", "name", "title", "paper_ref", "seed", "cluster",
                    "engine", "workloads", "budgets", "repetitions",
                    "randomize_order", "confidence", "faults", "confirm"});

  if (const Json* schema = json.find("schema")) {
    if (schema->as_int() != kSpecSchemaVersion) {
      spec_error("unsupported schema version " + std::to_string(schema->as_int()) +
                 " (this build understands " + std::to_string(kSpecSchemaVersion) + ")");
    }
  }

  ScenarioSpec spec;
  spec.name = json.at("name").as_string();
  spec.title = get_string(json, "title", "");
  spec.paper_ref = get_string(json, "paper_ref", "");
  if (const Json* seed = json.find("seed")) spec.seed = seed->as_uint();

  if (const Json* cluster = json.find("cluster")) {
    check_known_keys(*cluster, "cluster",
                     {"model", "nodes", "cores_per_node", "line_rate_gbps"});
    if (const Json* model = cluster->find("model")) {
      spec.cluster.model = parse_cloud_model(*model);
    }
    spec.cluster.nodes = get_int(*cluster, "nodes", spec.cluster.nodes);
    spec.cluster.cores_per_node =
        get_int(*cluster, "cores_per_node", spec.cluster.cores_per_node);
    spec.cluster.line_rate_gbps =
        get_double(*cluster, "line_rate_gbps", spec.cluster.line_rate_gbps);
  }

  if (const Json* engine = json.find("engine")) {
    check_known_keys(*engine, "engine",
                     {"partition_skew", "stable_partitioning", "machine_noise_cv",
                      "speculation"});
    spec.engine.partition_skew =
        get_double(*engine, "partition_skew", spec.engine.partition_skew);
    spec.engine.stable_partitioning =
        get_bool(*engine, "stable_partitioning", spec.engine.stable_partitioning);
    spec.engine.machine_noise_cv =
        get_double(*engine, "machine_noise_cv", spec.engine.machine_noise_cv);
    spec.engine.speculation = get_bool(*engine, "speculation", spec.engine.speculation);
  }

  for (const Json& ref : json.at("workloads").as_array()) {
    check_known_keys(ref, "workload", {"suite", "name", "cloud"});
    WorkloadRef w;
    w.suite = ref.at("suite").as_string();
    w.name = ref.at("name").as_string();
    if (const Json* cloud = ref.find("cloud")) w.cloud = parse_cloud_model(*cloud);
    spec.workloads.push_back(std::move(w));
  }

  if (const Json* budgets = json.find("budgets")) {
    for (const Json& b : budgets->as_array()) spec.budgets.push_back(b.as_double());
  }

  spec.repetitions = get_int(json, "repetitions", spec.repetitions);
  spec.randomize_order = get_bool(json, "randomize_order", spec.randomize_order);
  spec.confidence = get_double(json, "confidence", spec.confidence);

  if (const Json* faults = json.find("faults")) {
    check_known_keys(*faults, "faults",
                     {"enabled", "horizon_s", "crash_rate_per_hour",
                      "revocation_rate_per_hour", "slowdown_rate_per_hour",
                      "flap_rate_per_hour", "theft_rate_per_hour"});
    spec.faults.enabled = get_bool(*faults, "enabled", false);
    spec.faults.horizon_s = get_double(*faults, "horizon_s", spec.faults.horizon_s);
    spec.faults.crash_rate_per_hour = get_double(*faults, "crash_rate_per_hour", 0.0);
    spec.faults.revocation_rate_per_hour =
        get_double(*faults, "revocation_rate_per_hour", 0.0);
    spec.faults.slowdown_rate_per_hour =
        get_double(*faults, "slowdown_rate_per_hour", 0.0);
    spec.faults.flap_rate_per_hour = get_double(*faults, "flap_rate_per_hour", 0.0);
    spec.faults.theft_rate_per_hour = get_double(*faults, "theft_rate_per_hour", 0.0);
  }

  if (const Json* confirm = json.find("confirm")) {
    check_known_keys(*confirm, "confirm",
                     {"enabled", "quantile", "confidence", "error_bound",
                      "adaptive", "min_repetitions"});
    spec.confirm.enabled = get_bool(*confirm, "enabled", false);
    spec.confirm.quantile = get_double(*confirm, "quantile", spec.confirm.quantile);
    spec.confirm.confidence =
        get_double(*confirm, "confidence", spec.confirm.confidence);
    spec.confirm.error_bound =
        get_double(*confirm, "error_bound", spec.confirm.error_bound);
    spec.confirm.adaptive = get_bool(*confirm, "adaptive", false);
    spec.confirm.min_repetitions =
        get_int(*confirm, "min_repetitions", spec.confirm.min_repetitions);
  }

  spec.validate();
  return spec;
}

ScenarioSpec ScenarioSpec::parse(std::string_view json_text) {
  return from_json(Json::parse(json_text));
}

std::string ScenarioSpec::canonical_json() const { return to_json().canonical(); }

std::string ScenarioSpec::content_hash() const {
  // The version tag lives in the hashed bytes (not only in the JSON), so a
  // future v2 document can never collide with a v1 hash even if the field
  // set happens to serialize identically.
  return sha256_hex("cloudrepro-scenario-v" + std::to_string(kSpecSchemaVersion) +
                    "\n" + semantic_json().canonical());
}

void ScenarioSpec::validate() const {
  static const std::set<std::string, std::less<>> kKnownSuites = {
      "hibench", "hibench-ext", "tpcds", "tpch"};

  if (name.empty()) spec_error("name must be non-empty");
  if (workloads.empty()) spec_error("workloads must be non-empty");
  for (const auto& w : workloads) {
    if (!kKnownSuites.contains(w.suite)) {
      spec_error("unknown workload suite \"" + w.suite + "\"");
    }
    if (w.name.empty()) spec_error("workload name must be non-empty");
  }
  for (const double b : budgets) {
    if (!(b >= 0.0)) spec_error("budgets must be >= 0");
  }
  if (cluster.nodes < 1) spec_error("cluster.nodes must be >= 1");
  if (cluster.cores_per_node < 1) spec_error("cluster.cores_per_node must be >= 1");
  if (!(cluster.line_rate_gbps > 0.0)) spec_error("cluster.line_rate_gbps must be > 0");
  if (repetitions < 1) spec_error("repetitions must be >= 1");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    spec_error("confidence must be in (0, 1)");
  }
  if (!(engine.partition_skew >= 0.0)) spec_error("engine.partition_skew must be >= 0");
  if (!(engine.machine_noise_cv >= 0.0)) {
    spec_error("engine.machine_noise_cv must be >= 0");
  }
  if (faults.enabled) {
    if (!(faults.horizon_s > 0.0)) spec_error("faults.horizon_s must be > 0");
    for (const double rate :
         {faults.crash_rate_per_hour, faults.revocation_rate_per_hour,
          faults.slowdown_rate_per_hour, faults.flap_rate_per_hour,
          faults.theft_rate_per_hour}) {
      if (!(rate >= 0.0)) spec_error("fault rates must be >= 0");
    }
  }
  if (confirm.enabled) {
    if (!(confirm.quantile > 0.0 && confirm.quantile < 1.0)) {
      spec_error("confirm.quantile must be in (0, 1)");
    }
    if (!(confirm.confidence > 0.0 && confirm.confidence < 1.0)) {
      spec_error("confirm.confidence must be in (0, 1)");
    }
    if (!(confirm.error_bound > 0.0)) spec_error("confirm.error_bound must be > 0");
    if (confirm.min_repetitions < 0) {
      spec_error("confirm.min_repetitions must be >= 0");
    }
    if (confirm.min_repetitions > repetitions) {
      spec_error("confirm.min_repetitions must not exceed repetitions");
    }
  }
  if (!confirm.enabled && confirm.adaptive) {
    spec_error("confirm.adaptive requires confirm.enabled");
  }
}

}  // namespace cloudrepro::scenario
