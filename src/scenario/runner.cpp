#include "scenario/runner.h"

#include <chrono>
#include <exception>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/confirm.h"
#include "core/journal.h"
#include "faults/fault_plan.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "simnet/qos.h"

namespace cloudrepro::scenario {

namespace {

std::span<const bigdata::WorkloadProfile> suite_profiles(const std::string& suite) {
  if (suite == "hibench") return bigdata::hibench_suite();
  if (suite == "hibench-ext") return bigdata::hibench_extended_suite();
  if (suite == "tpcds") return bigdata::tpcds_suite();
  if (suite == "tpch") return bigdata::tpch_suite();
  throw std::out_of_range{"unknown workload suite \"" + suite + "\""};
}

faults::FaultPlanConfig fault_config(const FaultSpec& spec) {
  faults::FaultPlanConfig config;
  config.horizon_s = spec.horizon_s;
  config.crash_rate_per_hour = spec.crash_rate_per_hour;
  config.revocation_rate_per_hour = spec.revocation_rate_per_hour;
  config.slowdown_rate_per_hour = spec.slowdown_rate_per_hour;
  config.flap_rate_per_hour = spec.flap_rate_per_hour;
  config.theft_rate_per_hour = spec.theft_rate_per_hour;
  return config;
}

/// Builds this cell's cluster. Uniform-token-bucket clusters are
/// deterministic clones of the EC2 nominal bucket (the Figures 15-19
/// emulation); the cloud models draw per-VM incarnations from the
/// repetition's RNG stream, consuming draws *before* the engine runs —
/// the same order the Figure 13 bench established.
bigdata::Cluster make_cluster(CloudModel model, const ClusterSpec& spec,
                              stats::Rng& rng) {
  switch (model) {
    case CloudModel::kUniformTokenBucket: {
      const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
      const simnet::TokenBucketQos proto{bucket};
      return bigdata::Cluster::uniform(spec.nodes, spec.cores_per_node, proto,
                                       spec.line_rate_gbps);
    }
    case CloudModel::kEc2:
      return bigdata::Cluster::from_cloud(spec.nodes, spec.cores_per_node,
                                          cloud::ec2_c5_xlarge(), rng);
    case CloudModel::kGce:
      return bigdata::Cluster::from_cloud(spec.nodes, spec.cores_per_node,
                                          cloud::gce_8core(), rng);
    case CloudModel::kHpcCloud:
      return bigdata::Cluster::from_cloud(spec.nodes, spec.cores_per_node,
                                          cloud::hpccloud_8core(), rng);
  }
  throw std::logic_error{"make_cluster: unreachable"};
}

Json confirm_to_json(const core::ConfirmAnalysis& analysis) {
  JsonObject out;
  out["repetitions_needed"] = analysis.repetitions_needed
                                  ? Json{static_cast<std::uint64_t>(
                                        *analysis.repetitions_needed)}
                                  : Json{nullptr};
  out["ci_widened"] = Json{analysis.ci_widened};
  const auto& final_point = analysis.final_point();
  out["final_estimate"] = Json{final_point.estimate};
  out["final_ci_lower"] = Json{final_point.ci_lower};
  out["final_ci_upper"] = Json{final_point.ci_upper};
  out["final_ci_valid"] = Json{final_point.ci_valid};
  out["final_within_bound"] = Json{final_point.within_bound};
  return Json{std::move(out)};
}

}  // namespace

const bigdata::WorkloadProfile& resolve_workload(const WorkloadRef& ref) {
  const auto profiles = suite_profiles(ref.suite);
  for (const auto& profile : profiles) {
    if (profile.name == ref.name) return profile;
  }
  std::string known;
  for (const auto& profile : profiles) {
    if (!known.empty()) known += ", ";
    known += profile.name;
  }
  throw std::out_of_range{"unknown workload \"" + ref.name + "\" in suite \"" +
                          ref.suite + "\" (known: " + known + ")"};
}

std::vector<core::CampaignCell> build_cells(const ScenarioSpec& spec) {
  spec.validate();
  std::vector<core::CampaignCell> cells;
  cells.reserve(spec.cell_count());
  for (const auto& ref : spec.workloads) {
    const bigdata::WorkloadProfile& profile = resolve_workload(ref);
    const CloudModel model = ref.cloud.value_or(spec.cluster.model);
    for (std::size_t t = 0; t < spec.treatment_count(); ++t) {
      const double budget = spec.budgets.empty() ? -1.0 : spec.budgets[t];
      // Captures are by value (small structs + a pointer to the profile's
      // static storage): cells outlive the spec they were built from and
      // run concurrently under the campaign thread pool.
      const ClusterSpec cluster_spec = spec.cluster;
      const EngineSpec engine_spec = spec.engine;
      const FaultSpec fault_spec = spec.faults;
      cells.push_back(core::CampaignCell{
          profile.name, spec.treatment_label(t),
          [&profile, model, cluster_spec, engine_spec, fault_spec,
           budget](stats::Rng& rng) {
            auto cluster = make_cluster(model, cluster_spec, rng);
            if (budget >= 0.0) cluster.set_token_budgets(budget);
            bigdata::EngineOptions options;
            options.partition_skew = engine_spec.partition_skew;
            options.stable_partitioning = engine_spec.stable_partitioning;
            options.machine_noise_cv = engine_spec.machine_noise_cv;
            options.speculation.enabled = engine_spec.speculation;
            if (fault_spec.enabled) {
              options.fault_plan = faults::FaultPlan::sample(
                  fault_config(fault_spec), cluster.node_count(), rng);
            }
            bigdata::SparkEngine engine{options};
            return engine.run(profile, cluster, rng).runtime_s;
          },
          [] {}});
    }
  }
  return cells;
}

core::CampaignOptions campaign_options(const ScenarioSpec& spec) {
  core::CampaignOptions options;
  options.repetitions_per_cell = spec.repetitions;
  options.randomize_order = spec.randomize_order;
  options.confidence = spec.confidence;
  if (spec.confirm.enabled && spec.confirm.adaptive) {
    options.adaptive.enabled = true;
    options.adaptive.quantile = spec.confirm.quantile;
    options.adaptive.confidence = spec.confirm.confidence;
    options.adaptive.error_bound = spec.confirm.error_bound;
    options.adaptive.min_repetitions =
        static_cast<std::size_t>(spec.confirm.min_repetitions);
  }
  return options;
}

std::string summary_json(const ScenarioSpec& spec, std::uint64_t seed,
                         const core::CampaignResult& result) {
  JsonArray cells_json;
  for (const auto& cell : result.cells) {
    JsonObject c;
    c["config"] = Json{cell.config};
    c["treatment"] = Json{cell.treatment};
    c["n"] = Json{cell.values.size()};
    if (!cell.values.empty()) {
      c["mean"] = Json{cell.summary.mean};
      c["median"] = Json{cell.summary.median};
      c["stddev"] = Json{cell.summary.stddev};
      c["cov"] = Json{cell.summary.coefficient_of_variation};
      c["min"] = Json{cell.summary.min};
      c["max"] = Json{cell.summary.max};
      c["median_ci_lower"] = Json{cell.median_ci.lower};
      c["median_ci_upper"] = Json{cell.median_ci.upper};
      c["median_ci_valid"] = Json{cell.median_ci.valid};
      if (spec.confirm.enabled) {
        core::ConfirmOptions confirm_options;
        confirm_options.quantile = spec.confirm.quantile;
        confirm_options.confidence = spec.confirm.confidence;
        confirm_options.error_bound = spec.confirm.error_bound;
        Json confirm_json = confirm_to_json(
            core::confirm_analysis(cell.values, confirm_options));
        if (spec.confirm.adaptive) {
          // Everything here is a pure function of (spec, values): the stop
          // outcome re-derives from the value sequence, so the summary stays
          // byte-identical across thread counts and cache state.
          confirm_json["adaptive"] = Json{true};
          confirm_json["converged"] = Json{cell.adaptive_converged};
          confirm_json["stop_repetitions"] =
              Json{static_cast<std::uint64_t>(cell.stop_repetitions)};
          confirm_json["achieved_coverage"] =
              Json{cell.confirm_ci.valid ? cell.confirm_ci.confidence : 0.0};
        }
        c["confirm"] = std::move(confirm_json);
      }
    }
    cells_json.push_back(Json{std::move(c)});
  }

  JsonObject root;
  root["scenario"] = Json{spec.name};
  root["scenario_hash"] = Json{spec.content_hash()};
  root["seed"] = Json{seed};
  root["result_schema_version"] = Json{static_cast<std::int64_t>(kResultSchemaVersion)};
  root["repetitions_per_cell"] = Json{static_cast<std::int64_t>(spec.repetitions)};
  root["complete"] = Json{result.complete};
  root["cells"] = Json{std::move(cells_json)};
  return Json{std::move(root)}.canonical();
}

namespace {

/// Serves the store's published summary, validating it first. Returns false
/// when the summary is absent or corrupt (the checked read evicts a corrupt
/// one so the caller re-runs).
bool serve_summary(ResultStore& store, const ScenarioSpec& spec,
                   std::uint64_t seed, ScenarioRunResult& result) {
  auto summary = store.read_summary_checked(spec, seed);
  if (!summary) return false;
  result.summary = std::move(*summary);
  result.from_cached_summary = true;
  result.resumed_measurements = result.total_measurements;
  result.complete = true;
  return true;
}

}  // namespace

ScenarioRunResult run_scenario(const ScenarioSpec& spec, const RunOptions& options) {
  spec.validate();
  const std::uint64_t seed = options.seed.value_or(spec.seed);

  ScenarioRunResult result;
  result.total_measurements = spec.total_measurements();

  EntryLock lock;
  if (options.store) {
    const auto lookup = options.store->lookup(spec, seed);
    result.hit_state = lookup.state;
    if (lookup.state == ResultStore::HitState::kHit && !options.need_values &&
        serve_summary(*options.store, spec, seed, result)) {
      // Full hit: serve the stored summary verbatim; nothing executes, so
      // no lock is needed — publication was atomic.
      return result;
    }

    // Single-flight admission: only the lock holder executes. A losing
    // process polls for either the holder's published summary (read
    // through, execute nothing) or the lock itself (holder crashed or
    // finished without publishing — e.g. interrupted; we resume its
    // journal).
    lock = options.store->try_lock(spec, seed);
    for (int attempt = 0; !lock; ++attempt) {
      if (attempt >= options.lock_wait_attempts) {
        throw std::runtime_error{
            "timed out waiting for the result-store lock on " +
            options.store->entry_key(spec, seed) +
            " (another process is executing this scenario)"};
      }
      options.store->note_lock_wait();
      std::this_thread::sleep_for(std::chrono::milliseconds(options.lock_wait_ms));
      if (!options.need_values && options.store->has_summary(spec, seed) &&
          serve_summary(*options.store, spec, seed, result)) {
        options.store->note_read_through();
        result.hit_state = ResultStore::HitState::kHit;
        return result;
      }
      lock = options.store->try_lock(spec, seed);
    }
    // Holder may have completed between our lookup and the lock handover.
    if (!options.need_values &&
        serve_summary(*options.store, spec, seed, result)) {
      result.hit_state = ResultStore::HitState::kHit;
      return result;
    }
  }

  auto campaign_opts = campaign_options(spec);
  campaign_opts.threads = options.threads;
  campaign_opts.pool = options.pool;
  campaign_opts.max_measurements = options.max_measurements;
  campaign_opts.cancel = options.cancel;
  campaign_opts.vfs = options.vfs;
  campaign_opts.metrics = options.metrics;
  if (options.store) {
    campaign_opts.journal_path = options.store->prepare(spec, seed);
  }

  auto cells = build_cells(spec);
  core::CampaignResult campaign;
  try {
    campaign = core::run_campaign(std::move(cells), campaign_opts, seed);
  } catch (const core::JournalMismatch&) {
    // A journal written by an older build (different header) or with
    // out-of-range records. Content addressing makes the entry worthless,
    // not the run: evict it and redo the campaign cold. The type is
    // specific so real I/O failures (ENOSPC, EIO) can never trigger an
    // evict-and-retry that would silently discard completed work.
    if (!options.store) throw;
    options.store->evict(spec, seed);
    campaign_opts.journal_path = options.store->prepare(spec, seed);
    campaign = core::run_campaign(build_cells(spec), campaign_opts, seed);
  }

  std::size_t measured = 0;
  for (const auto& cell : campaign.cells) measured += cell.values.size();
  result.resumed_measurements = campaign.resumed_measurements;
  result.executed_measurements = measured - campaign.resumed_measurements;
  result.complete = campaign.complete;

  if (options.metrics && campaign_opts.adaptive.enabled) {
    for (const auto& cell : campaign.cells) {
      if (cell.adaptive_converged) {
        options.metrics->counter("scenario.confirm.converged").add();
        options.metrics->histogram("scenario.confirm.stop_repetitions")
            .observe(static_cast<double>(cell.stop_repetitions));
      } else {
        options.metrics->counter("scenario.confirm.unconverged").add();
      }
      if (cell.confirm_ci.valid) {
        options.metrics->histogram("scenario.confirm.achieved_coverage")
            .observe(cell.confirm_ci.confidence);
      }
    }
  }

  result.summary = summary_json(spec, seed, campaign);
  if (options.store && campaign.complete) {
    options.store->write_summary(spec, seed, result.summary);
    // Enforce the byte budget now that the entry is complete, shielding it
    // from its own eviction (it is by construction the most recent entry,
    // but the budget may be smaller than this single entry).
    options.store->enforce_budget(options.store->entry_key(spec, seed));
  }
  result.campaign = std::move(campaign);
  return result;
}

SuiteRunResult run_suite(const std::vector<ScenarioSpec>& specs,
                         const RunOptions& options,
                         const SuiteMemberCallback& on_member) {
  SuiteRunResult suite;
  suite.members.resize(specs.size());
  if (specs.empty()) return suite;

  const int threads =
      options.pool ? options.pool->thread_count()
                   : runtime::ThreadPool::resolve_thread_count(options.threads);
  if (!options.pool && threads <= 1) {
    // Serial reference: members in order, each campaign on this thread.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      suite.members[i] = run_scenario(specs[i], options);
      if (on_member) on_member(i, suite.members[i]);
      if (!suite.members[i].complete) suite.complete = false;
      if (options.cancel && options.cancel->load(std::memory_order_relaxed)) {
        suite.complete = false;
        break;
      }
    }
    return suite;
  }

  std::unique_ptr<runtime::ThreadPool> owned_pool;
  runtime::ThreadPool* pool = options.pool;
  if (!pool) {
    owned_pool = std::make_unique<runtime::ThreadPool>(threads);
    pool = owned_pool.get();
  }

  // One coordinator thread per member: it holds the member's single-flight
  // lock, writes its journal (draining the campaign's SPSC handoff rings),
  // and builds its summary, while the measurement tasks themselves all run
  // on the shared pool. Coordinators must be dedicated threads, not pool
  // tasks — a coordinator blocks waiting for its campaign's cells, and a
  // blocked pool task would eat a worker the cells need.
  std::vector<std::exception_ptr> errors(specs.size());
  std::vector<std::thread> coordinators;
  coordinators.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    coordinators.emplace_back([&, i, pool] {
      try {
        RunOptions member_options = options;
        member_options.pool = pool;
        suite.members[i] = run_scenario(specs[i], member_options);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }

  // Ordered emission: join in member order and emit each member as soon as
  // its whole prefix has landed. After the first error, later members still
  // join (they ran; the cache keeps their work) but are not emitted — the
  // serial loop would have thrown before reaching them.
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    coordinators[i].join();
    if (first_error) continue;
    if (errors[i]) {
      first_error = errors[i];
      continue;
    }
    if (on_member) on_member(i, suite.members[i]);
    if (!suite.members[i].complete) suite.complete = false;
  }
  if (first_error) std::rethrow_exception(first_error);
  return suite;
}

}  // namespace cloudrepro::scenario
