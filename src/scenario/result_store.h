#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.h"

namespace cloudrepro::io {
class Vfs;
}  // namespace cloudrepro::io

namespace cloudrepro::obs {
class MetricsRegistry;
}  // namespace cloudrepro::obs

namespace cloudrepro::scenario {

/// Version of the *measurement semantics*: what a stored value means and
/// how it was produced (engine, simulator, campaign seed derivation). Bump
/// whenever a change makes previously cached measurements non-reproducible
/// by the current code — old entries then never match, and the cache
/// lifecycle ages them out.
inline constexpr int kResultSchemaVersion = 1;

/// Held while a process executes a cache entry's campaign: the single-flight
/// token of the lock-file protocol. Bool-convertible (false = not acquired).
/// Releasing removes the lock file; a crash leaves it behind, and the next
/// `try_lock` steals it once the holder is provably dead.
class EntryLock {
 public:
  EntryLock() = default;
  EntryLock(EntryLock&& other) noexcept;
  EntryLock& operator=(EntryLock&& other) noexcept;
  EntryLock(const EntryLock&) = delete;
  EntryLock& operator=(const EntryLock&) = delete;
  ~EntryLock();

  explicit operator bool() const noexcept { return vfs_ != nullptr; }
  /// Removes the lock file. Never throws: on a (simulated or real) crash
  /// the file legitimately survives for the staleness protocol to reap.
  void release() noexcept;

 private:
  friend class ResultStore;
  EntryLock(io::Vfs* vfs, std::filesystem::path path);

  io::Vfs* vfs_ = nullptr;
  std::filesystem::path path_;
};

struct ResultStoreOptions {
  /// LRU byte budget enforced by `enforce_budget`; 0 = unbounded.
  std::uintmax_t max_bytes = 0;
};

/// On-disk content-addressed cache of scenario results, keyed by
/// (scenario content hash, seed, result schema version). One directory per
/// key:
///
///   <root>/<hash>-s<seed>-v<version>/
///     scenario.json   canonical spec, for humans and debugging
///     journal.jsonl   the campaign journal (checksummed records) — *is*
///                     the partial-hit state; resuming through it reuses
///                     completed measurements
///     summary.json    canonical summary, fsynced then renamed into place
///                     only when complete — its presence is what makes an
///                     entry a full hit
///     lock            held (exclusive-create, pid inside) while a process
///                     executes this entry's campaign
///     last-used       logical LRU clock value, advanced on every access
///   <root>/clock      the logical clock the LRU ordering derives from
///
/// All I/O goes through an `io::Vfs`, so every durability claim here is
/// exercised by the crash-torture harness under `io::FaultVfs`.
///
/// Counters (when a MetricsRegistry is attached):
///   scenario.cache.hit / .partial / .miss     one per `lookup`
///   scenario.cache.evictions                  entries removed
///   scenario.cache.evicted_bytes              bytes those entries held
///   scenario.cache.lock_contention            try_lock lost to a live holder
///   scenario.cache.lock_stolen                stale (dead-holder) lock reaped
///   scenario.cache.read_through               served a summary published by
///                                             the concurrent lock holder
///   scenario.cache.corrupt_summaries          summary failed validation and
///                                             the entry was evicted
/// Gauge:
///   scenario.cache.bytes                      total cache size after the
///                                             last budget enforcement
class ResultStore {
 public:
  using Options = ResultStoreOptions;

  explicit ResultStore(std::filesystem::path root,
                       obs::MetricsRegistry* metrics = nullptr,
                       io::Vfs* vfs = nullptr, Options options = {});

  enum class HitState { kMiss, kPartial, kHit };
  static const char* to_string(HitState state) noexcept;

  struct Lookup {
    HitState state = HitState::kMiss;
    /// Journal measurements available for reuse (== total when complete).
    std::size_t cached_measurements = 0;
    std::size_t total_measurements = 0;
    std::filesystem::path dir;
  };

  /// Classifies the entry, bumps the corresponding cache counter, and
  /// freshens the entry's LRU clock on a hit or partial.
  Lookup lookup(const ScenarioSpec& spec, std::uint64_t seed);
  /// Same classification without touching counters or the clock (stats,
  /// tests).
  Lookup peek(const ScenarioSpec& spec, std::uint64_t seed) const;

  std::filesystem::path entry_dir(const ScenarioSpec& spec, std::uint64_t seed) const;
  std::filesystem::path journal_path(const ScenarioSpec& spec, std::uint64_t seed) const;
  std::filesystem::path summary_path(const ScenarioSpec& spec, std::uint64_t seed) const;
  /// Directory name for (spec, seed): <hash>-s<seed>-v<version>.
  std::string entry_key(const ScenarioSpec& spec, std::uint64_t seed) const;

  /// Creates the entry directory (and `scenario.json` if absent) and
  /// returns the journal path for `CampaignOptions::journal_path`.
  std::filesystem::path prepare(const ScenarioSpec& spec, std::uint64_t seed);

  bool has_summary(const ScenarioSpec& spec, std::uint64_t seed) const;
  /// Exact bytes written by `write_summary`; nullopt when absent. No
  /// validation — pair with `read_summary_checked` when serving cache hits.
  std::optional<std::string> read_summary(const ScenarioSpec& spec,
                                          std::uint64_t seed) const;
  /// `read_summary` plus integrity validation (non-empty, parses as JSON).
  /// A corrupt summary — possible only through external damage, since
  /// publication is fsync-then-rename — evicts the entry, bumps
  /// scenario.cache.corrupt_summaries, and returns nullopt so the caller
  /// re-runs instead of serving garbage.
  std::optional<std::string> read_summary_checked(const ScenarioSpec& spec,
                                                  std::uint64_t seed);
  /// Atomically publishes the summary, completing the entry. Durability
  /// order: write tmp, fsync tmp, rename into place, fsync directory — a
  /// crash anywhere leaves either no summary (entry stays partial,
  /// journal resumes) or the complete summary, never a torn one.
  void write_summary(const ScenarioSpec& spec, std::uint64_t seed,
                     std::string_view summary);

  /// Freshens the entry's LRU clock without classifying it or bumping any
  /// cache counter — for servers that answer hits via `peek` /
  /// `read_summary_checked` (keeping scenario.cache.* meaning "campaign
  /// admissions") but still want served entries to stay budget-resident.
  /// No-op when the entry does not exist.
  void touch(const ScenarioSpec& spec, std::uint64_t seed);

  /// Single-flight: acquires the entry's lock file, stealing it from a
  /// provably dead holder (recorded pid no longer alive; for this process's
  /// own pid, a crashed earlier incarnation is recognized by the lock not
  /// being registered as held). Returns a false lock when a live holder has
  /// it — callers poll `has_summary` and re-try (bounded) to read through.
  EntryLock try_lock(const ScenarioSpec& spec, std::uint64_t seed);

  /// Counter hooks for the single-flight loop in the runner.
  void note_lock_wait();
  void note_read_through();

  struct EntryInfo {
    std::string key;  ///< Directory name: <hash>-s<seed>-v<version>.
    bool complete = false;
    std::size_t journal_measurements = 0;
    std::uintmax_t bytes = 0;
    std::uint64_t last_used = 0;    ///< Logical LRU clock; 0 = never touched.
    bool current_schema = false;    ///< Key suffix matches kResultSchemaVersion.
    bool locked = false;            ///< A lock file is present (may be stale).
  };
  /// All entries under the root, key-sorted.
  std::vector<EntryInfo> entries() const;

  /// Enforces `Options::max_bytes`: ages out every stale-schema entry, then
  /// evicts current-schema entries in LRU order until the cache fits. Never
  /// evicts `protect_key` (the in-flight entry) or an entry whose lock has
  /// a live holder. No-op when max_bytes is 0. Returns entries evicted.
  std::size_t enforce_budget(const std::string& protect_key = {});

  struct VerifyReport {
    std::string key;
    bool ok = true;
    std::string note;  ///< Problem description, or informational detail.
  };
  /// Integrity-checks every entry: scenario.json and summary.json must
  /// parse as JSON; journal records must pass their checksums. A torn
  /// journal tail is reported in `note` but stays `ok` — resume heals it.
  std::vector<VerifyReport> verify() const;

  /// Removes one entry; returns the number removed (0 or 1).
  std::size_t evict(const ScenarioSpec& spec, std::uint64_t seed);
  /// Removes every entry; returns the number removed.
  std::size_t clear();

  const std::filesystem::path& root() const noexcept { return root_; }
  const Options& options() const noexcept { return options_; }

 private:
  void count(const char* which, double delta = 1.0) const;
  /// Advances the logical clock and stamps the entry's last-used file.
  /// Best-effort: an I/O error here (e.g. ENOSPC) never fails the lookup.
  void touch_entry(const std::filesystem::path& dir);
  std::uint64_t last_used(const std::filesystem::path& dir) const;
  std::uintmax_t entry_bytes(const std::filesystem::path& dir) const;
  /// Counts intact measurement records in a journal (adaptive stop records
  /// are skipped, not counted). When `valid_lines` is non-null it receives
  /// the count of intact record lines of *any* kind, for torn-tail checks.
  std::size_t count_journal_measurements(const std::filesystem::path& path,
                                         std::size_t* valid_lines = nullptr) const;
  std::size_t remove_entry(const std::filesystem::path& dir);

  std::filesystem::path root_;
  obs::MetricsRegistry* metrics_;
  io::Vfs* vfs_;
  Options options_;
};

}  // namespace cloudrepro::scenario
