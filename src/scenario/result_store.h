#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.h"

namespace cloudrepro::obs {
class MetricsRegistry;
}  // namespace cloudrepro::obs

namespace cloudrepro::scenario {

/// Version of the *measurement semantics*: what a stored value means and
/// how it was produced (engine, simulator, campaign seed derivation). Bump
/// whenever a change makes previously cached measurements non-reproducible
/// by the current code — old entries then simply never match and age out.
inline constexpr int kResultSchemaVersion = 1;

/// On-disk content-addressed cache of scenario results, keyed by
/// (scenario content hash, seed, result schema version). One directory per
/// key:
///
///   <root>/<hash>-s<seed>-v<version>/
///     scenario.json   canonical spec, for humans and debugging
///     journal.jsonl   the campaign journal — *is* the partial-hit state;
///                     resuming through it reuses completed measurements
///     summary.json    canonical summary, written only when complete —
///                     its presence is what makes an entry a full hit
///
/// Counters (when a MetricsRegistry is attached):
///   scenario.cache.hit / .partial / .miss   one per `lookup`
///   scenario.cache.evictions                entries removed
class ResultStore {
 public:
  explicit ResultStore(std::filesystem::path root,
                       obs::MetricsRegistry* metrics = nullptr);

  enum class HitState { kMiss, kPartial, kHit };
  static const char* to_string(HitState state) noexcept;

  struct Lookup {
    HitState state = HitState::kMiss;
    /// Journal measurements available for reuse (== total when complete).
    std::size_t cached_measurements = 0;
    std::size_t total_measurements = 0;
    std::filesystem::path dir;
  };

  /// Classifies the entry and bumps the corresponding cache counter.
  Lookup lookup(const ScenarioSpec& spec, std::uint64_t seed);
  /// Same classification without touching counters (stats, tests).
  Lookup peek(const ScenarioSpec& spec, std::uint64_t seed) const;

  std::filesystem::path entry_dir(const ScenarioSpec& spec, std::uint64_t seed) const;
  std::filesystem::path journal_path(const ScenarioSpec& spec, std::uint64_t seed) const;
  std::filesystem::path summary_path(const ScenarioSpec& spec, std::uint64_t seed) const;

  /// Creates the entry directory (and `scenario.json` if absent) and
  /// returns the journal path for `CampaignOptions::journal_path`.
  std::filesystem::path prepare(const ScenarioSpec& spec, std::uint64_t seed);

  bool has_summary(const ScenarioSpec& spec, std::uint64_t seed) const;
  /// Exact bytes written by `write_summary`; nullopt when absent.
  std::optional<std::string> read_summary(const ScenarioSpec& spec,
                                          std::uint64_t seed) const;
  /// Atomically (write + rename) publishes the summary, completing the entry.
  void write_summary(const ScenarioSpec& spec, std::uint64_t seed,
                     std::string_view summary);

  struct EntryInfo {
    std::string key;  ///< Directory name: <hash>-s<seed>-v<version>.
    bool complete = false;
    std::size_t journal_measurements = 0;
    std::uintmax_t bytes = 0;
  };
  /// All entries under the root, key-sorted.
  std::vector<EntryInfo> entries() const;

  /// Removes one entry; returns the number removed (0 or 1).
  std::size_t evict(const ScenarioSpec& spec, std::uint64_t seed);
  /// Removes every entry; returns the number removed.
  std::size_t clear();

  const std::filesystem::path& root() const noexcept { return root_; }

 private:
  void count(const char* which, double delta = 1.0) const;

  std::filesystem::path root_;
  obs::MetricsRegistry* metrics_;
};

}  // namespace cloudrepro::scenario
