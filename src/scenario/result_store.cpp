#include "scenario/result_store.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "core/journal.h"
#include "io/vfs.h"
#include "obs/metrics.h"
#include "scenario/json.h"

namespace cloudrepro::scenario {

namespace {

/// Lock paths currently held by this process. A lock file whose recorded
/// pid is our own but which is *not* in this set belongs to a crashed
/// earlier incarnation (the crash-torture harness restarts in-process) and
/// is stealable; one that *is* in the set is held by another thread.
std::mutex g_held_locks_mu;
std::set<std::string> g_held_locks;

void register_held(const std::filesystem::path& path) {
  std::lock_guard<std::mutex> lock{g_held_locks_mu};
  g_held_locks.insert(path.string());
}

void unregister_held(const std::filesystem::path& path) noexcept {
  try {
    std::lock_guard<std::mutex> lock{g_held_locks_mu};
    g_held_locks.erase(path.string());
  } catch (...) {
  }
}

bool is_registered_held(const std::filesystem::path& path) {
  std::lock_guard<std::mutex> lock{g_held_locks_mu};
  return g_held_locks.count(path.string()) > 0;
}

/// Is the recorded lock holder provably alive? Unparseable content counts
/// as dead (a torn lock write can only come from a crash mid-acquisition).
/// The record is only trusted when newline-terminated: a crash can tear
/// "pid 12345\n" down to "pid 1", which would otherwise misread as a
/// *different* — possibly live — pid and wedge every future acquirer.
bool holder_alive(const std::string& contents, const std::filesystem::path& lock_path) {
  if (contents.compare(0, 4, "pid ") != 0) return false;
  char* end = nullptr;
  const long pid = std::strtol(contents.c_str() + 4, &end, 10);
  if (end == contents.c_str() + 4 || pid <= 0 || *end != '\n') return false;
  if (pid == static_cast<long>(::getpid())) return is_registered_held(lock_path);
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

/// Parses `<64-hex>-s<digits>-v<digits>`; filters out non-entry names like
/// the root's `clock` file and recovers the schema version for age-out.
bool parse_entry_key(const std::string& key, int& schema_version) {
  if (key.size() < 64 + 2 + 1 + 2 + 1) return false;
  for (std::size_t i = 0; i < 64; ++i) {
    if (!std::isxdigit(static_cast<unsigned char>(key[i]))) return false;
  }
  if (key.compare(64, 2, "-s") != 0) return false;
  std::size_t pos = 66;
  const std::size_t seed_start = pos;
  while (pos < key.size() && std::isdigit(static_cast<unsigned char>(key[pos]))) ++pos;
  if (pos == seed_start) return false;
  if (key.compare(pos, 2, "-v") != 0) return false;
  pos += 2;
  const std::size_t version_start = pos;
  while (pos < key.size() && std::isdigit(static_cast<unsigned char>(key[pos]))) ++pos;
  if (pos == version_start || pos != key.size()) return false;
  schema_version = std::atoi(key.c_str() + version_start);
  return true;
}

bool parses_as_json(const std::string& text) {
  try {
    Json::parse(text);
    return true;
  } catch (const JsonError&) {
    return false;
  }
}

}  // namespace

EntryLock::EntryLock(io::Vfs* vfs, std::filesystem::path path)
    : vfs_(vfs), path_(std::move(path)) {}

EntryLock::EntryLock(EntryLock&& other) noexcept
    : vfs_(other.vfs_), path_(std::move(other.path_)) {
  other.vfs_ = nullptr;
}

EntryLock& EntryLock::operator=(EntryLock&& other) noexcept {
  if (this != &other) {
    release();
    vfs_ = other.vfs_;
    path_ = std::move(other.path_);
    other.vfs_ = nullptr;
  }
  return *this;
}

EntryLock::~EntryLock() { release(); }

void EntryLock::release() noexcept {
  if (!vfs_) return;
  unregister_held(path_);
  try {
    vfs_->remove(path_);
  } catch (...) {
    // A (simulated) crash mid-release leaves the file for staleness reaping
    // — exactly what a real crash would do.
  }
  vfs_ = nullptr;
}

ResultStore::ResultStore(std::filesystem::path root, obs::MetricsRegistry* metrics,
                         io::Vfs* vfs, Options options)
    : root_(std::move(root)),
      metrics_(metrics),
      vfs_(vfs ? vfs : &io::real_vfs()),
      options_(options) {}

const char* ResultStore::to_string(HitState state) noexcept {
  switch (state) {
    case HitState::kMiss: return "miss";
    case HitState::kPartial: return "partial";
    case HitState::kHit: return "hit";
  }
  return "?";
}

void ResultStore::count(const char* which, double delta) const {
  if (metrics_) metrics_->counter(which).add(delta);
}

std::string ResultStore::entry_key(const ScenarioSpec& spec,
                                   std::uint64_t seed) const {
  return spec.content_hash() + "-s" + std::to_string(seed) + "-v" +
         std::to_string(kResultSchemaVersion);
}

std::filesystem::path ResultStore::entry_dir(const ScenarioSpec& spec,
                                             std::uint64_t seed) const {
  return root_ / entry_key(spec, seed);
}

std::filesystem::path ResultStore::journal_path(const ScenarioSpec& spec,
                                                std::uint64_t seed) const {
  return entry_dir(spec, seed) / "journal.jsonl";
}

std::filesystem::path ResultStore::summary_path(const ScenarioSpec& spec,
                                                std::uint64_t seed) const {
  return entry_dir(spec, seed) / "summary.json";
}

std::size_t ResultStore::count_journal_measurements(
    const std::filesystem::path& path, std::size_t* valid_lines) const {
  if (valid_lines) *valid_lines = 0;
  const auto contents = vfs_->read_file(path);
  if (!contents || contents->empty()) return 0;
  const auto header_end = contents->find('\n');
  if (header_end == std::string::npos) return 0;
  std::size_t offset = header_end + 1;
  std::size_t measurements = 0;
  while (offset < contents->size()) {
    const auto line_end = contents->find('\n', offset);
    if (line_end == std::string::npos) break;  // Torn tail: not reusable.
    core::JournalRecord record;
    if (!core::parse_journal_line(contents->substr(offset, line_end - offset),
                                  record)) {
      break;  // Corrupt record: the tail truncates on resume.
    }
    // Adaptive stop records are decisions, not measurements.
    if (record.kind == core::JournalRecord::Kind::kValue) ++measurements;
    if (valid_lines) ++*valid_lines;
    offset = line_end + 1;
  }
  return measurements;
}

void ResultStore::touch_entry(const std::filesystem::path& dir) {
  try {
    const auto clock_path = root_ / "clock";
    std::uint64_t now = 0;
    if (const auto contents = vfs_->read_file(clock_path)) {
      now = std::strtoull(contents->c_str(), nullptr, 10);
    }
    ++now;
    auto clock_file = vfs_->open_write(clock_path, io::WriteMode::kTruncate);
    clock_file->append(std::to_string(now) + "\n");
    clock_file->close();
    auto stamp = vfs_->open_write(dir / "last-used", io::WriteMode::kTruncate);
    stamp->append(std::to_string(now) + "\n");
    stamp->close();
  } catch (const io::IoError&) {
    // LRU freshness is advisory; never fail an access over it (ENOSPC on a
    // full cache device must not break cache reads).
  }
}

std::uint64_t ResultStore::last_used(const std::filesystem::path& dir) const {
  const auto contents = vfs_->read_file(dir / "last-used");
  if (!contents) return 0;
  return std::strtoull(contents->c_str(), nullptr, 10);
}

ResultStore::Lookup ResultStore::peek(const ScenarioSpec& spec,
                                      std::uint64_t seed) const {
  Lookup lookup;
  lookup.dir = entry_dir(spec, seed);
  lookup.total_measurements = spec.total_measurements();
  if (vfs_->exists(lookup.dir / "summary.json")) {
    lookup.state = HitState::kHit;
    lookup.cached_measurements = lookup.total_measurements;
    return lookup;
  }
  lookup.cached_measurements =
      count_journal_measurements(lookup.dir / "journal.jsonl");
  lookup.state = lookup.cached_measurements > 0 ? HitState::kPartial : HitState::kMiss;
  return lookup;
}

ResultStore::Lookup ResultStore::lookup(const ScenarioSpec& spec, std::uint64_t seed) {
  const Lookup result = peek(spec, seed);
  switch (result.state) {
    case HitState::kHit: count("scenario.cache.hit"); break;
    case HitState::kPartial: count("scenario.cache.partial"); break;
    case HitState::kMiss: count("scenario.cache.miss"); break;
  }
  if (result.state != HitState::kMiss) touch_entry(result.dir);
  return result;
}

void ResultStore::touch(const ScenarioSpec& spec, std::uint64_t seed) {
  const auto dir = entry_dir(spec, seed);
  if (vfs_->exists(dir)) touch_entry(dir);
}

std::filesystem::path ResultStore::prepare(const ScenarioSpec& spec,
                                           std::uint64_t seed) {
  const auto dir = entry_dir(spec, seed);
  vfs_->create_directories(dir);
  const auto spec_path = dir / "scenario.json";
  const std::string expected = spec.canonical_json() + "\n";
  // Rewrite unless the file already holds exactly the canonical bytes: a
  // crash can tear the unsynced provenance record, and "exists" alone
  // would leave the torn prefix in place forever.
  if (vfs_->read_file(spec_path) != expected) {
    auto out = vfs_->open_write(spec_path, io::WriteMode::kTruncate);
    out->append(expected);
    // Durable before the campaign starts: a crash after the summary is
    // published must not be able to tear the provenance record, because
    // the restart then serves the summary without re-running prepare().
    out->sync();
    out->close();
  }
  touch_entry(dir);
  return dir / "journal.jsonl";
}

bool ResultStore::has_summary(const ScenarioSpec& spec, std::uint64_t seed) const {
  return vfs_->exists(summary_path(spec, seed));
}

std::optional<std::string> ResultStore::read_summary(const ScenarioSpec& spec,
                                                     std::uint64_t seed) const {
  return vfs_->read_file(summary_path(spec, seed));
}

std::optional<std::string> ResultStore::read_summary_checked(
    const ScenarioSpec& spec, std::uint64_t seed) {
  auto summary = read_summary(spec, seed);
  if (!summary) return std::nullopt;
  if (!summary->empty() && parses_as_json(*summary)) return summary;
  // Publication is fsync-then-rename, so a torn summary means external
  // damage. The journal may still be intact; drop only the summary so the
  // re-run resumes instead of starting cold.
  count("scenario.cache.corrupt_summaries");
  try {
    vfs_->remove(summary_path(spec, seed));
  } catch (const io::IoError&) {
    // Unremovable == unreadable next time too; the caller still re-runs.
  }
  return std::nullopt;
}

void ResultStore::write_summary(const ScenarioSpec& spec, std::uint64_t seed,
                                std::string_view summary) {
  const auto dir = entry_dir(spec, seed);
  vfs_->create_directories(dir);
  const auto final_path = dir / "summary.json";
  const auto tmp_path = dir / "summary.json.tmp";
  {
    auto out = vfs_->open_write(tmp_path, io::WriteMode::kTruncate);
    out->append(summary);
    // fsync BEFORE rename: rename orders the *name*, not the content. A
    // crash between an unsynced write and the rename would otherwise
    // publish a torn summary whose presence falsely marks the entry
    // complete.
    out->sync();
    out->close();
  }
  vfs_->rename(tmp_path, final_path);
  // Make the publication itself durable: the new directory entry must
  // survive the crash too, or the entry silently degrades to partial.
  vfs_->sync_dir(dir);
  touch_entry(dir);  // A fresh write counts as a use for the LRU ordering.
}

EntryLock ResultStore::try_lock(const ScenarioSpec& spec, std::uint64_t seed) {
  const auto dir = entry_dir(spec, seed);
  vfs_->create_directories(dir);
  const auto lock_path = dir / "lock";
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      auto file = vfs_->open_write(lock_path, io::WriteMode::kExclusive);
      file->append("pid " + std::to_string(::getpid()) + "\n");
      file->close();
      register_held(lock_path);
      return EntryLock{vfs_, lock_path};
    } catch (const io::IoError& error) {
      if (error.error_code() != EEXIST) throw;
    }
    auto contents = vfs_->read_file(lock_path);
    if (contents && (contents->compare(0, 4, "pid ") != 0 ||
                     contents->find('\n') == std::string::npos)) {
      // Exclusive-create and the pid append are two syscalls: an empty or
      // partial (no newline yet) lock may belong to a live acquirer
      // mid-write, not a torn crash. Grace-period re-read before treating
      // it as stale.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      contents = vfs_->read_file(lock_path);
    }
    if (contents && holder_alive(*contents, lock_path)) {
      count("scenario.cache.lock_contention");
      return EntryLock{};
    }
    if (contents) {
      // Dead holder: reap the stale lock, then race for it once more.
      count("scenario.cache.lock_stolen");
      try {
        vfs_->remove(lock_path);
      } catch (const io::IoError&) {
      }
    }
    // File vanished (holder released) or was reaped: second attempt races.
  }
  count("scenario.cache.lock_contention");
  return EntryLock{};
}

void ResultStore::note_lock_wait() { count("scenario.cache.lock_wait"); }

void ResultStore::note_read_through() { count("scenario.cache.read_through"); }

std::uintmax_t ResultStore::entry_bytes(const std::filesystem::path& dir) const {
  std::uintmax_t bytes = 0;
  for (const auto& file : vfs_->list_dir(dir)) bytes += vfs_->file_size(file);
  return bytes;
}

std::vector<ResultStore::EntryInfo> ResultStore::entries() const {
  std::vector<EntryInfo> out;
  for (const auto& path : vfs_->list_dir(root_)) {
    int schema_version = 0;
    const std::string key = path.filename().string();
    if (!parse_entry_key(key, schema_version)) continue;
    EntryInfo info;
    info.key = key;
    info.complete = vfs_->exists(path / "summary.json");
    info.journal_measurements = count_journal_measurements(path / "journal.jsonl");
    info.bytes = entry_bytes(path);
    info.last_used = last_used(path);
    info.current_schema = schema_version == kResultSchemaVersion;
    info.locked = vfs_->exists(path / "lock");
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const EntryInfo& a, const EntryInfo& b) { return a.key < b.key; });
  return out;
}

std::size_t ResultStore::remove_entry(const std::filesystem::path& dir) {
  if (!vfs_->exists(dir)) return 0;
  count("scenario.cache.evicted_bytes", static_cast<double>(entry_bytes(dir)));
  vfs_->remove_all(dir);
  count("scenario.cache.evictions");
  return 1;
}

std::size_t ResultStore::enforce_budget(const std::string& protect_key) {
  if (options_.max_bytes == 0) return 0;
  auto infos = entries();

  const auto live_locked = [this](const EntryInfo& info) {
    if (!info.locked) return false;
    const auto lock_path = root_ / info.key / "lock";
    const auto contents = vfs_->read_file(lock_path);
    return contents && holder_alive(*contents, lock_path);
  };

  std::uintmax_t total = 0;
  for (const auto& info : infos) total += info.bytes;
  std::size_t evicted = 0;

  // Stale-schema entries can never be read by this build: age them out
  // first, regardless of recency.
  for (auto& info : infos) {
    if (info.current_schema || info.key == protect_key || live_locked(info)) continue;
    total -= std::min(total, info.bytes);
    evicted += remove_entry(root_ / info.key);
    info.bytes = 0;
    info.key.clear();  // Mark consumed for the LRU pass.
  }

  // LRU pass: oldest logical clock first; key breaks ties deterministically.
  std::sort(infos.begin(), infos.end(), [](const EntryInfo& a, const EntryInfo& b) {
    return a.last_used != b.last_used ? a.last_used < b.last_used : a.key < b.key;
  });
  for (const auto& info : infos) {
    if (total <= options_.max_bytes) break;
    if (info.key.empty() || info.key == protect_key || live_locked(info)) continue;
    total -= std::min(total, info.bytes);
    evicted += remove_entry(root_ / info.key);
  }

  if (metrics_) {
    metrics_->gauge("scenario.cache.bytes").set(static_cast<double>(total));
  }
  return evicted;
}

std::vector<ResultStore::VerifyReport> ResultStore::verify() const {
  std::vector<VerifyReport> out;
  for (const auto& info : entries()) {
    VerifyReport report;
    report.key = info.key;
    const auto dir = root_ / info.key;

    if (const auto spec_text = vfs_->read_file(dir / "scenario.json");
        spec_text && !parses_as_json(*spec_text)) {
      report.ok = false;
      report.note = "scenario.json does not parse";
    }
    if (report.ok) {
      if (const auto summary = vfs_->read_file(dir / "summary.json")) {
        if (summary->empty() || !parses_as_json(*summary)) {
          report.ok = false;
          report.note = "summary.json corrupt (empty or unparseable)";
        }
      }
    }
    if (report.ok) {
      const auto journal = vfs_->read_file(dir / "journal.jsonl");
      if (journal && !journal->empty()) {
        std::size_t valid = 0;  // Record lines of any kind (values + stops).
        count_journal_measurements(dir / "journal.jsonl", &valid);
        // Count the journal's total record lines to spot a corrupt tail.
        const auto header_end = journal->find('\n');
        std::size_t lines = 0;
        for (auto pos = header_end;
             pos != std::string::npos && pos + 1 < journal->size();
             pos = journal->find('\n', pos + 1)) {
          ++lines;
        }
        const bool unterminated = journal->back() != '\n';
        if (valid < lines || unterminated) {
          report.note = "journal tail torn after " + std::to_string(valid) +
                        " valid records (truncates on resume)";
        }
      }
    }
    out.push_back(std::move(report));
  }
  return out;
}

std::size_t ResultStore::evict(const ScenarioSpec& spec, std::uint64_t seed) {
  return remove_entry(entry_dir(spec, seed));
}

std::size_t ResultStore::clear() {
  std::size_t removed = 0;
  for (const auto& path : vfs_->list_dir(root_)) {
    int schema_version = 0;
    if (!parse_entry_key(path.filename().string(), schema_version)) continue;
    removed += remove_entry(path);
  }
  return removed;
}

}  // namespace cloudrepro::scenario
