#include "scenario/result_store.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "obs/metrics.h"

namespace cloudrepro::scenario {

namespace {

/// Counts reusable measurements in a campaign journal: complete lines after
/// the header that carry a value field. A torn final line (crash mid-write)
/// is not counted — the campaign re-runs that measurement, exactly as its
/// own loader does.
std::size_t count_journal_measurements(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) return 0;
  std::string line;
  if (!std::getline(in, line)) return 0;  // Header (or empty file).
  std::size_t count = 0;
  while (std::getline(in, line)) {
    if (line.find("\"value\":") != std::string::npos) ++count;
  }
  return count;
}

}  // namespace

ResultStore::ResultStore(std::filesystem::path root, obs::MetricsRegistry* metrics)
    : root_(std::move(root)), metrics_(metrics) {}

const char* ResultStore::to_string(HitState state) noexcept {
  switch (state) {
    case HitState::kMiss: return "miss";
    case HitState::kPartial: return "partial";
    case HitState::kHit: return "hit";
  }
  return "?";
}

void ResultStore::count(const char* which, double delta) const {
  if (metrics_) metrics_->counter(which).add(delta);
}

std::filesystem::path ResultStore::entry_dir(const ScenarioSpec& spec,
                                             std::uint64_t seed) const {
  return root_ / (spec.content_hash() + "-s" + std::to_string(seed) + "-v" +
                  std::to_string(kResultSchemaVersion));
}

std::filesystem::path ResultStore::journal_path(const ScenarioSpec& spec,
                                                std::uint64_t seed) const {
  return entry_dir(spec, seed) / "journal.jsonl";
}

std::filesystem::path ResultStore::summary_path(const ScenarioSpec& spec,
                                                std::uint64_t seed) const {
  return entry_dir(spec, seed) / "summary.json";
}

ResultStore::Lookup ResultStore::peek(const ScenarioSpec& spec,
                                      std::uint64_t seed) const {
  Lookup lookup;
  lookup.dir = entry_dir(spec, seed);
  lookup.total_measurements = spec.total_measurements();
  if (std::filesystem::exists(lookup.dir / "summary.json")) {
    lookup.state = HitState::kHit;
    lookup.cached_measurements = lookup.total_measurements;
    return lookup;
  }
  lookup.cached_measurements = count_journal_measurements(lookup.dir / "journal.jsonl");
  lookup.state = lookup.cached_measurements > 0 ? HitState::kPartial : HitState::kMiss;
  return lookup;
}

ResultStore::Lookup ResultStore::lookup(const ScenarioSpec& spec, std::uint64_t seed) {
  const Lookup result = peek(spec, seed);
  switch (result.state) {
    case HitState::kHit: count("scenario.cache.hit"); break;
    case HitState::kPartial: count("scenario.cache.partial"); break;
    case HitState::kMiss: count("scenario.cache.miss"); break;
  }
  return result;
}

std::filesystem::path ResultStore::prepare(const ScenarioSpec& spec,
                                           std::uint64_t seed) {
  const auto dir = entry_dir(spec, seed);
  std::filesystem::create_directories(dir);
  const auto spec_path = dir / "scenario.json";
  if (!std::filesystem::exists(spec_path)) {
    std::ofstream out{spec_path};
    if (!out) {
      throw std::runtime_error{"ResultStore: cannot write " + spec_path.string()};
    }
    out << spec.canonical_json() << '\n';
  }
  return dir / "journal.jsonl";
}

bool ResultStore::has_summary(const ScenarioSpec& spec, std::uint64_t seed) const {
  return std::filesystem::exists(summary_path(spec, seed));
}

std::optional<std::string> ResultStore::read_summary(const ScenarioSpec& spec,
                                                     std::uint64_t seed) const {
  std::ifstream in{summary_path(spec, seed), std::ios::binary};
  if (!in) return std::nullopt;
  return std::string{std::istreambuf_iterator<char>{in},
                     std::istreambuf_iterator<char>{}};
}

void ResultStore::write_summary(const ScenarioSpec& spec, std::uint64_t seed,
                                std::string_view summary) {
  const auto dir = entry_dir(spec, seed);
  std::filesystem::create_directories(dir);
  const auto final_path = dir / "summary.json";
  const auto tmp_path = dir / "summary.json.tmp";
  {
    std::ofstream out{tmp_path, std::ios::binary | std::ios::trunc};
    if (!out) {
      throw std::runtime_error{"ResultStore: cannot write " + tmp_path.string()};
    }
    out << summary;
  }
  // Rename-into-place so a reader never observes a half-written summary
  // (the summary's presence is the completeness marker).
  std::filesystem::rename(tmp_path, final_path);
}

std::vector<ResultStore::EntryInfo> ResultStore::entries() const {
  std::vector<EntryInfo> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator{root_, ec}) {
    if (!entry.is_directory()) continue;
    EntryInfo info;
    info.key = entry.path().filename().string();
    info.complete = std::filesystem::exists(entry.path() / "summary.json");
    info.journal_measurements =
        count_journal_measurements(entry.path() / "journal.jsonl");
    for (const auto& file : std::filesystem::directory_iterator{entry.path()}) {
      if (file.is_regular_file()) info.bytes += file.file_size();
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const EntryInfo& a, const EntryInfo& b) { return a.key < b.key; });
  return out;
}

std::size_t ResultStore::evict(const ScenarioSpec& spec, std::uint64_t seed) {
  const auto dir = entry_dir(spec, seed);
  if (!std::filesystem::exists(dir)) return 0;
  std::filesystem::remove_all(dir);
  count("scenario.cache.evictions");
  return 1;
}

std::size_t ResultStore::clear() {
  std::size_t removed = 0;
  std::error_code ec;
  std::vector<std::filesystem::path> dirs;
  for (const auto& entry : std::filesystem::directory_iterator{root_, ec}) {
    if (entry.is_directory()) dirs.push_back(entry.path());
  }
  for (const auto& dir : dirs) {
    std::filesystem::remove_all(dir);
    ++removed;
  }
  if (removed > 0) count("scenario.cache.evictions", static_cast<double>(removed));
  return removed;
}

}  // namespace cloudrepro::scenario
