#pragma once

#include <string>
#include <string_view>

namespace cloudrepro::scenario {

/// SHA-256 of `data` as a 64-character lowercase hex string. Self-contained
/// (FIPS 180-4); the scenario content hash needs a collision-resistant
/// digest and the image ships no crypto library.
std::string sha256_hex(std::string_view data);

}  // namespace cloudrepro::scenario
