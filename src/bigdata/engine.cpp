#include "bigdata/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "cloud/tc_emulator.h"
#include "faults/injector.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "simnet/fluid_network.h"
#include "simnet/token_bucket.h"
#include "stats/descriptive.h"

namespace cloudrepro::bigdata {

namespace {

constexpr double kTimeEpsilon = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Makespan of `tasks` lognormally-jittered tasks greedily packed onto
/// `cores` cores (list scheduling).
double compute_makespan(int tasks, int cores, double mean_s, double cv,
                        stats::Rng& rng) {
  if (tasks <= 0) return 0.0;
  // Lognormal with the requested mean and coefficient of variation.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean_s) - sigma2 / 2.0;
  std::vector<double> core_load(static_cast<std::size_t>(cores), 0.0);
  for (int t = 0; t < tasks; ++t) {
    auto it = std::min_element(core_load.begin(), core_load.end());
    *it += rng.lognormal(mu, std::sqrt(sigma2));
  }
  return *std::max_element(core_load.begin(), core_load.end());
}

/// Per-node shuffle-volume weights with mean 1: Zipf-shaped over a random
/// node permutation (so the heavy node is not always node 0).
std::vector<double> skew_weights(std::size_t nodes, double skew, stats::Rng& rng) {
  std::vector<double> w(nodes, 1.0);
  if (skew <= 0.0) return w;
  double sum = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i) + 1.0, skew);
    sum += w[i];
  }
  const double norm = static_cast<double>(nodes) / sum;
  for (auto& v : w) v *= norm;
  const auto perm = rng.permutation(nodes);
  std::vector<double> shuffled(nodes);
  for (std::size_t i = 0; i < nodes; ++i) shuffled[perm[i]] = w[i];
  return shuffled;
}

/// Accumulates per-node egress timelines in fixed buckets from simulator
/// steps (steps may span several buckets; rates are constant within a step).
class TimelineRecorder {
 public:
  TimelineRecorder(std::size_t nodes, double interval_s)
      : interval_s_{interval_s}, gbit_in_bucket_(nodes, 0.0), timelines_(nodes) {}

  void observe(const simnet::FluidNetwork& net, double t_end, double dt) {
    if (interval_s_ <= 0.0) return;
    double t = t_end - dt;
    while (t < t_end - 1e-12) {
      const double bucket_end = (std::floor(t / interval_s_) + 1.0) * interval_s_;
      const double chunk = std::min(bucket_end, t_end) - t;
      for (std::size_t n = 0; n < gbit_in_bucket_.size(); ++n) {
        gbit_in_bucket_[n] += net.node_egress_rate(n) * chunk;
      }
      t += chunk;
      if (t >= bucket_end - 1e-12) {
        for (std::size_t n = 0; n < gbit_in_bucket_.size(); ++n) {
          TimelinePoint p;
          p.t = bucket_end;
          p.egress_gbps = gbit_in_bucket_[n] / interval_s_;
          p.budget_gbit = net.node_qos(n).budget_gbit().value_or(-1.0);
          timelines_[n].push_back(p);
          gbit_in_bucket_[n] = 0.0;
        }
      }
    }
  }

  std::vector<std::vector<TimelinePoint>> take() { return std::move(timelines_); }

 private:
  double interval_s_;
  std::vector<double> gbit_in_bucket_;
  std::vector<std::vector<TimelinePoint>> timelines_;
};

/// One job execution: the stage loop plus the fault/recovery machinery.
/// Everything here is a pure function of (options, workload, cluster state,
/// fault plan, rng), so runs stay reproducible per seed even under faults.
class JobExecution {
 public:
  JobExecution(const EngineOptions& options, const WorkloadProfile& workload,
               Cluster& cluster, stats::Rng& rng, std::vector<double> weights)
      : opt_{options},
        workload_{workload},
        cluster_{cluster},
        rng_{rng},
        weights_{std::move(weights)},
        n_{cluster.node_count()},
        injector_{options.fault_plan},
        recorder_{n_, options.timeline_interval_s} {
    for (std::size_t i = 0; i < n_; ++i) {
      net_.add_node(cluster_.node(i).egress->clone(), cluster_.node(i).line_rate_gbps);
    }
    alive_.assign(n_, 1);
    draining_.assign(n_, 0);
    // Inherit health the cluster carries from previous runs: failed nodes
    // stay dead, degraded ones start slow.
    for (std::size_t i = 0; i < n_; ++i) {
      switch (cluster_.node(i).health) {
        case NodeHealth::kFailed:
          alive_[i] = 0;
          net_.fail_node(i);
          break;
        case NodeHealth::kDegraded:
          net_.set_node_rate_factor(i, cluster_.node(i).degrade_factor);
          break;
        case NodeHealth::kUp:
          break;
      }
    }
    if (opt_.timeline_interval_s > 0.0) {
      net_.set_step_observer([this](const simnet::FluidNetwork& n, double t, double dt) {
        recorder_.observe(n, t, dt);
      });
    }
    CLOUDREPRO_OBS_STMT(
        net_.set_observability(opt_.tracer, opt_.metrics);
        injector_.set_tracer(opt_.tracer);
        if (opt_.metrics) {
          c_task_retries_ = &opt_.metrics->counter("engine.task_retries");
          c_speculations_ = &opt_.metrics->counter("engine.speculative_launches");
          c_nodes_lost_ = &opt_.metrics->counter("engine.nodes_lost");
          c_jobs_ = &opt_.metrics->counter("engine.jobs");
        })
  }

  JobResult execute() {
    result_.workload = workload_.name;
    result_.per_node_sent_gbit.assign(n_, 0.0);
    result_.node_egress_busy_s.assign(n_, 0.0);

    // Per-run, per-node machine speed factors (non-network variability).
    node_speed_.assign(n_, 1.0);
    if (opt_.machine_noise_cv > 0.0) {
      const double sigma2 =
          std::log(1.0 + opt_.machine_noise_cv * opt_.machine_noise_cv);
      for (auto& f : node_speed_) f = rng_.lognormal(-sigma2 / 2.0, std::sqrt(sigma2));
    }

    if (workers().size() < 2) {
      throw std::runtime_error{
          "SparkEngine: fewer than 2 healthy nodes at job submission"};
    }
    for (const auto& stage : workload_.stages) run_stage(stage);
    finalize();
    return std::move(result_);
  }

 private:
  struct StageState {
    const StageProfile* profile = nullptr;
    double start = 0.0;        ///< Stage (and shuffle) start time.
    double compute_end = 0.0;  ///< Dynamic barrier: crashes extend it.
    std::vector<simnet::FlowId> flows;  ///< All flows launched this stage.
    std::vector<char> speculated;       ///< Per-node: already speculated once.
    double next_check = kInf;
    int retries = 0;
  };
  struct PendingResend {
    double at_s = 0.0;  ///< Launch time (crash time + retry backoff).
    double gbit = 0.0;
  };

  std::vector<std::size_t> workers() const {
    std::vector<std::size_t> w;
    for (std::size_t i = 0; i < n_; ++i) {
      if (alive_[i] && !draining_[i]) w.push_back(i);
    }
    return w;
  }

  std::size_t alive_count() const {
    std::size_t c = 0;
    for (std::size_t i = 0; i < n_; ++i) c += alive_[i] ? 1 : 0;
    return c;
  }

  void run_stage(const StageProfile& stage) {
    st_ = StageState{};
    st_.profile = &stage;
    st_.start = net_.now();
    st_.speculated.assign(n_, 0);
    if (opt_.speculation.enabled) {
      st_.next_check = st_.start + opt_.speculation.check_interval_s;
    }

    const auto stage_workers = workers();

    // Compute wave: barrier at the slowest node's makespan. CPU-credit
    // shaping (burstable instances) stretches a node's compute once its
    // credits deplete — the CPU analogue of the network token bucket.
    makespans_.assign(n_, 0.0);
    double stage_compute = 0.0;
    for (const std::size_t i : stage_workers) {
      double makespan =
          node_speed_[i] * compute_makespan(stage.tasks_per_node, cluster_.cores_per_node(),
                                            stage.compute_s_mean, stage.compute_s_cv, rng_);
      if (cluster_.node(i).cpu.has_value()) {
        makespan = cluster_.node(i).cpu->run_compute(makespan);
      }
      makespans_[i] = makespan;
      stage_compute = std::max(stage_compute, makespan);
    }
    st_.compute_end = st_.start + stage_compute;

    // Shuffle transfers overlap the stage's compute: map tasks stream their
    // output as they produce it (Spark pipelines shuffle writes/fetches with
    // task execution). The stage barrier falls at whichever finishes last.
    // This overlap is essential for reproducing the paper's token-bucket
    // effects — it keeps the network busy, so bucket budgets are not
    // silently replenished during compute-only phases.
    if (stage.shuffle_gbit_per_node > 0.0 && stage_workers.size() > 1) {
      st_.flows.reserve(stage_workers.size() * (stage_workers.size() - 1));
      for (const std::size_t src : stage_workers) {
        const double send_gbit = stage.shuffle_gbit_per_node * weights_[src];
        const double per_peer = send_gbit / static_cast<double>(stage_workers.size() - 1);
        result_.per_node_sent_gbit[src] += send_gbit;
        for (const std::size_t dst : stage_workers) {
          if (dst == src) continue;
          st_.flows.push_back(net_.start_flow(src, dst, per_peer));
        }
      }
    }

    // Phase 1: run to the compute barrier, replaying fault events at their
    // exact times (a crash may extend the barrier with redo work).
    while (net_.now() < st_.compute_end - kTimeEpsilon) {
      const double t_stop = std::min(st_.compute_end, next_action_time());
      if (t_stop > net_.now()) net_.run_until(t_stop);
      process_due_actions();
    }
    // Nodes that finished early idle at the barrier and earn CPU credits.
    const double barrier_span = st_.compute_end - st_.start;
    for (const std::size_t i : stage_workers) {
      if (alive_[i] && cluster_.node(i).cpu.has_value()) {
        cluster_.node(i).cpu->advance(std::max(0.0, barrier_span - makespans_[i]), 0.0);
      }
    }

    // Phase 2: drain the shuffle — original flows, retried re-shuffles, and
    // speculative re-executions — before the stage barrier releases.
    while (stage_flows_pending() || !resends_.empty()) {
      const double t_next =
          std::max(std::min(opt_.deadline_s, next_action_time()), net_.now());
      if (stage_flows_pending()) {
        net_.run_until_flows_complete(t_next);
      } else if (t_next > net_.now()) {
        net_.run_until(t_next);  // Idle until the next retry launches.
      }
      process_due_actions();
      if ((stage_flows_pending() || !resends_.empty()) &&
          net_.now() >= opt_.deadline_s - kTimeEpsilon) {
        throw std::runtime_error{
            "SparkEngine: shuffle did not finish before the deadline"};
      }
    }

    if (!st_.flows.empty()) {
      std::vector<double> stage_busy(n_, 0.0);
      for (const auto id : st_.flows) {
        const auto& f = net_.flow(id);
        stage_busy[f.src] = std::max(stage_busy[f.src], f.end_time - st_.start);
      }
      for (std::size_t i = 0; i < n_; ++i) {
        result_.node_egress_busy_s[i] += stage_busy[i];
      }
    }

    CLOUDREPRO_OBS_STMT(
        if (opt_.tracer) {
          opt_.tracer->complete(st_.start, net_.now() - st_.start, "engine",
                                "stage",
                                {"stage", static_cast<double>(stage_idx_)},
                                {"retries", static_cast<double>(st_.retries)}, 0,
                                1);
        }
        ++stage_idx_;)
  }

  bool stage_flows_pending() const {
    for (const auto id : st_.flows) {
      if (net_.flow(id).active) return true;
    }
    return false;
  }

  /// Earliest pending engine action: fault event, retry launch, or
  /// speculation scan.
  double next_action_time() const {
    double t = injector_.next_time();
    for (const auto& r : resends_) t = std::min(t, r.at_s);
    if (opt_.speculation.enabled && stage_flows_pending()) {
      t = std::min(t, st_.next_check);
    }
    return t;
  }

  void process_due_actions() {
    const double now = net_.now();
    while (injector_.next_time() <= now + kTimeEpsilon) {
      handle_fault(injector_.pop());
    }
    for (std::size_t i = 0; i < resends_.size();) {
      if (resends_[i].at_s <= now + kTimeEpsilon) {
        const double gbit = resends_[i].gbit;
        resends_.erase(resends_.begin() + static_cast<std::ptrdiff_t>(i));
        launch_resend(gbit);
      } else {
        ++i;
      }
    }
    if (opt_.speculation.enabled && st_.next_check <= now + kTimeEpsilon) {
      speculation_check();
      st_.next_check += opt_.speculation.check_interval_s;
    }
  }

  void handle_fault(const faults::FaultEvent& ev) {
    if (ev.node >= n_) return;  // Plan sampled for a larger cluster.
    switch (ev.kind) {
      case faults::FaultKind::kTransientSlowdown: {
        if (!alive_[ev.node]) break;
        if (ev.magnitude >= 1.0) {  // Synthetic restore at window end.
          net_.set_node_rate_factor(ev.node, 1.0);
          cluster_.restore_node(ev.node);
        } else {
          net_.set_node_rate_factor(ev.node, ev.magnitude);
          cluster_.degrade_node(ev.node, ev.magnitude);
          if (ev.duration_s > 0.0) {
            injector_.schedule({faults::FaultKind::kTransientSlowdown,
                                ev.at_s + ev.duration_s, ev.node, 0.0, 1.0});
          }
        }
        break;
      }
      case faults::FaultKind::kLinkFlap: {
        if (!alive_[ev.node]) break;
        if (ev.magnitude <= 0.0) {  // Synthetic restore at burst end.
          net_.set_node_loss(ev.node, 0.0);
          cluster_.restore_node(ev.node);
        } else {
          net_.set_node_loss(ev.node, ev.magnitude);
          cluster_.degrade_node(ev.node, 1.0 - ev.magnitude);
          if (ev.duration_s > 0.0) {
            injector_.schedule({faults::FaultKind::kLinkFlap,
                                ev.at_s + ev.duration_s, ev.node, 0.0, 0.0});
          }
        }
        break;
      }
      case faults::FaultKind::kTokenTheft: {
        if (!alive_[ev.node]) break;
        auto& qos = net_.node_qos(ev.node);
        if (auto* tb = dynamic_cast<simnet::TokenBucketQos*>(&qos)) {
          tb->bucket().set_budget(std::max(0.0, tb->bucket().budget() - ev.magnitude));
        } else if (auto* tc = dynamic_cast<cloud::TcEmulator*>(&qos)) {
          tc->bucket().set_budget(std::max(0.0, tc->bucket().budget() - ev.magnitude));
        }
        break;
      }
      case faults::FaultKind::kSpotRevocation: {
        if (!alive_[ev.node] || draining_[ev.node]) break;
        // The node finishes in-flight work during the notice window but is
        // assigned nothing new; the instance disappears when it expires.
        draining_[ev.node] = 1;
        injector_.schedule({faults::FaultKind::kNodeCrash,
                            ev.at_s + ev.duration_s, ev.node, 0.0, 0.0});
        break;
      }
      case faults::FaultKind::kNodeCrash:
        crash_node(ev.node);
        break;
    }
  }

  void crash_node(std::size_t k) {
    if (!alive_[k]) return;
    alive_[k] = 0;
    draining_[k] = 0;
    cluster_.fail_node(k);
    ++result_.recovery.nodes_lost;
    CLOUDREPRO_OBS_STMT(
        if (c_nodes_lost_) c_nodes_lost_->add();
        if (opt_.tracer) {
          opt_.tracer->instant(net_.now(), "engine", "node_crash",
                               {"node", static_cast<double>(k)}, {},
                               static_cast<std::uint32_t>(k), 1);
        })
    if (alive_count() < 2) {
      throw std::runtime_error{
          "SparkEngine: too many node failures — fewer than 2 nodes remain"};
    }

    // Compute still running on k is lost; survivors redo the whole task wave
    // (the recompute-from-replicated-input approximation).
    const bool redo_compute =
        net_.now() < st_.compute_end - kTimeEpsilon && makespans_[k] > 0.0;
    if (redo_compute) {
      result_.recovery.lost_compute_s +=
          std::min(net_.now() - st_.start, makespans_[k]);
    }

    // In-flight shuffle bytes touching k are gone: k's own unsent output,
    // plus survivors' transfers to k (its reduce partitions move, so those
    // bytes must be re-fetched by whoever inherits them).
    double lost_out = 0.0;
    double orphaned_in = 0.0;
    for (const auto id : st_.flows) {
      const auto& f = net_.flow(id);
      if (!f.active) continue;
      if (f.src == k) {
        lost_out += f.remaining_gbit;
      } else if (f.dst == k) {
        orphaned_in += f.remaining_gbit;
        result_.per_node_sent_gbit[f.src] -= f.remaining_gbit;
      }
    }
    net_.fail_node(k);  // Stops every flow k sources or sinks, right now.
    result_.recovery.lost_gbit += lost_out;
    result_.per_node_sent_gbit[k] -= lost_out;  // Never made it onto the wire.

    const double resend_gbit = lost_out + orphaned_in;
    if (!redo_compute && resend_gbit <= 0.0) return;  // Nothing to retry.

    ++st_.retries;
    ++result_.recovery.task_retries;
    CLOUDREPRO_OBS_STMT(
        if (c_task_retries_) c_task_retries_->add();
        if (opt_.tracer) {
          opt_.tracer->instant(net_.now(), "engine", "task_retry",
                               {"node", static_cast<double>(k)},
                               {"attempt", static_cast<double>(st_.retries)},
                               static_cast<std::uint32_t>(k), 1);
        })
    if (st_.retries > opt_.retry.max_attempts) {
      throw std::runtime_error{"SparkEngine: stage retry budget exhausted"};
    }
    const double delay = opt_.retry.delay(st_.retries);
    result_.recovery.backoff_wait_s += delay;
    if (redo_compute) {
      // k's tasks re-run spread across every surviving worker's cores.
      const auto surv = workers();
      const int surv_cores =
          cluster_.cores_per_node() * static_cast<int>(surv.size());
      const double redo =
          compute_makespan(st_.profile->tasks_per_node, surv_cores,
                           st_.profile->compute_s_mean, st_.profile->compute_s_cv, rng_);
      st_.compute_end = std::max(st_.compute_end, net_.now() + delay + redo);
    }
    if (resend_gbit > 0.0) {
      resends_.push_back({net_.now() + delay, resend_gbit});
    }
  }

  /// Re-shuffles bytes lost to a node failure: survivors regenerate and
  /// exchange them evenly (all-to-all over the surviving workers).
  void launch_resend(double gbit) {
    const auto surv = workers();
    if (surv.size() < 2) {
      throw std::runtime_error{
          "SparkEngine: not enough nodes to re-execute lost shuffle work"};
    }
    const double per_flow =
        gbit / static_cast<double>(surv.size() * (surv.size() - 1));
    if (per_flow <= 0.0) return;
    for (const std::size_t src : surv) {
      result_.per_node_sent_gbit[src] +=
          per_flow * static_cast<double>(surv.size() - 1);
      for (const std::size_t dst : surv) {
        if (dst == src) continue;
        st_.flows.push_back(net_.start_flow(src, dst, per_flow));
      }
    }
  }

  /// Fastest healthy worker by currently-grantable egress rate, excluding
  /// `exclude_a`/`exclude_b`; n_ (invalid) when none qualifies.
  std::size_t fastest_worker(std::size_t exclude_a, std::size_t exclude_b) const {
    std::size_t best = n_;
    double best_rate = 0.0;
    for (const std::size_t i : workers()) {
      if (i == exclude_a || i == exclude_b) continue;
      const double rate = net_.node_allowed_rate(i);
      if (rate > best_rate) {
        best_rate = rate;
        best = i;
      }
    }
    return best;
  }

  /// Straggler scan: any source whose current egress rate has collapsed
  /// below median / threshold gets its remaining transfers stopped and
  /// re-launched from the fastest healthy node (speculative execution).
  void speculation_check() {
    std::vector<std::size_t> sources;
    std::vector<double> rates;
    std::vector<char> has_active(n_, 0);
    for (const auto id : st_.flows) {
      const auto& f = net_.flow(id);
      if (f.active) has_active[f.src] = 1;
    }
    for (std::size_t i = 0; i < n_; ++i) {
      if (has_active[i] && alive_[i]) {
        sources.push_back(i);
        rates.push_back(net_.node_egress_rate(i));
      }
    }
    if (sources.size() < 2) return;
    const double med = stats::median(rates);
    if (med <= 0.0) return;

    for (std::size_t s = 0; s < sources.size(); ++s) {
      const std::size_t straggler = sources[s];
      if (st_.speculated[straggler]) continue;
      if (rates[s] >= med / opt_.speculation.slowdown_threshold) continue;

      double remaining = 0.0;
      std::vector<simnet::FlowId> victim_flows;
      for (const auto id : st_.flows) {
        const auto& f = net_.flow(id);
        if (f.active && f.src == straggler) {
          remaining += f.remaining_gbit;
          victim_flows.push_back(id);
        }
      }
      if (remaining < opt_.speculation.min_remaining_gbit) continue;
      const std::size_t donor = fastest_worker(straggler, n_);
      if (donor >= n_ || net_.node_allowed_rate(donor) <= rates[s]) continue;

      st_.speculated[straggler] = 1;
      ++result_.recovery.speculative_launches;
      result_.recovery.speculated_gbit += remaining;
      CLOUDREPRO_OBS_STMT(
          if (c_speculations_) c_speculations_->add();
          if (opt_.tracer) {
            opt_.tracer->instant(net_.now(), "engine", "speculation",
                                 {"straggler", static_cast<double>(straggler)},
                                 {"gbit", remaining},
                                 static_cast<std::uint32_t>(straggler), 1);
          })
      for (const auto id : victim_flows) {
        const double rem = net_.flow(id).remaining_gbit;
        const std::size_t dst = net_.flow(id).dst;
        net_.stop_flow(id);
        // The speculative copy runs on the donor; a transfer *to* the donor
        // falls back to the next-fastest source (or stays home on a 2-node
        // remnant, where speculation cannot help that peer).
        std::size_t src_new = donor;
        if (dst == donor) {
          const std::size_t alt = fastest_worker(straggler, dst);
          src_new = alt < n_ ? alt : straggler;
        }
        result_.per_node_sent_gbit[straggler] -= rem;
        result_.per_node_sent_gbit[src_new] += rem;
        st_.flows.push_back(net_.start_flow(src_new, dst, rem));
      }
    }
  }

  void finalize() {
    result_.runtime_s = net_.now();
    CLOUDREPRO_OBS_STMT(
        if (c_jobs_) c_jobs_->add();
        if (opt_.tracer) {
          // Each job starts its own fluid network at t = 0, so the job span
          // covers [0, runtime] in that job's simulated-time frame.
          opt_.tracer->complete(
              0.0, result_.runtime_s, "engine", "job",
              {"retries", static_cast<double>(result_.recovery.task_retries)},
              {"nodes_lost", static_cast<double>(result_.recovery.nodes_lost)},
              0, 1);
        })
    if (opt_.timeline_interval_s > 0.0) result_.timelines = recorder_.take();

    // Straggler analysis on *effective egress rates* (sent / busy): mere load
    // imbalance keeps every node at the same QoS rate, so the ratio stays
    // near 1; a node whose bucket depleted collapses to the capped rate and
    // sticks out regardless of how much it had to send.
    result_.node_effective_rate_gbps.assign(n_, 0.0);
    std::vector<double> rates;
    std::vector<double> busys;
    for (std::size_t i = 0; i < n_; ++i) {
      if (result_.node_egress_busy_s[i] > 0.0) {
        result_.node_effective_rate_gbps[i] =
            result_.per_node_sent_gbit[i] / result_.node_egress_busy_s[i];
        rates.push_back(result_.node_effective_rate_gbps[i]);
        busys.push_back(result_.node_egress_busy_s[i]);
      }
    }
    if (!rates.empty()) {
      const auto slowest_it = std::min_element(rates.begin(), rates.end());
      // Map back to the node index (rates skips idle nodes).
      for (std::size_t i = 0; i < n_; ++i) {
        if (result_.node_egress_busy_s[i] > 0.0 &&
            result_.node_effective_rate_gbps[i] == *slowest_it) {
          result_.slowest_node = i;
          break;
        }
      }
      result_.straggler_ratio = compute_straggler_ratio(rates);
    }
    if (busys.size() >= 2) {
      const double med_busy = stats::median(busys);
      const double max_busy = *std::max_element(busys.begin(), busys.end());
      if (med_busy > 0.0) result_.completion_straggler_ratio = max_busy / med_busy;
    }
    for (std::size_t i = 0; i < n_; ++i) {
      result_.recovery.retransmitted_gbit += net_.node_retransmitted_gbit(i);
    }

    // Persist QoS state back into the cluster: the next job starts with
    // whatever budget this one left behind.
    for (std::size_t i = 0; i < n_; ++i) {
      cluster_.node(i).egress = net_.node_qos(i).clone();
    }
  }

  const EngineOptions& opt_;
  const WorkloadProfile& workload_;
  Cluster& cluster_;
  stats::Rng& rng_;
  std::vector<double> weights_;
  std::size_t n_;
  simnet::FluidNetwork net_;
  faults::FaultInjector injector_;
  TimelineRecorder recorder_;
  JobResult result_;
  std::vector<char> alive_;
  std::vector<char> draining_;
  std::vector<double> node_speed_;
  std::vector<double> makespans_;
  StageState st_;
  std::vector<PendingResend> resends_;
  std::size_t stage_idx_ = 0;
  obs::Counter* c_task_retries_ = nullptr;
  obs::Counter* c_speculations_ = nullptr;
  obs::Counter* c_nodes_lost_ = nullptr;
  obs::Counter* c_jobs_ = nullptr;
};

}  // namespace

double RetryPolicy::delay(int attempt) const noexcept {
  double d = backoff_base_s;
  for (int i = 1; i < attempt; ++i) d *= backoff_factor;
  return std::min(d, backoff_cap_s);
}

double compute_straggler_ratio(std::span<const double> effective_rates) noexcept {
  // Fewer than two busy nodes can never evidence a straggler: there is no
  // peer to be slower than.
  if (effective_rates.size() < 2) return 1.0;
  const double slowest =
      *std::min_element(effective_rates.begin(), effective_rates.end());
  const double med = stats::median(effective_rates);
  if (med <= 0.0) return 1.0;  // Nothing moved anywhere — no straggler signal.
  // Clamp a zero/near-zero slowest rate (a node whose every byte was lost or
  // speculated away) so the ratio stays finite instead of dividing by ~0.
  constexpr double kMinRateGbps = 1e-9;
  return med / std::max(slowest, kMinRateGbps);
}

SparkEngine::SparkEngine(EngineOptions options) : options_{std::move(options)} {
  if (options_.partition_skew < 0.0) {
    throw std::invalid_argument{"SparkEngine: partition_skew must be non-negative"};
  }
  if (options_.retry.max_attempts < 0) {
    throw std::invalid_argument{"SparkEngine: retry.max_attempts must be >= 0"};
  }
  if (options_.retry.backoff_base_s < 0.0 || options_.retry.backoff_factor < 1.0) {
    throw std::invalid_argument{"SparkEngine: invalid retry backoff"};
  }
  if (options_.speculation.enabled &&
      (options_.speculation.check_interval_s <= 0.0 ||
       options_.speculation.slowdown_threshold <= 1.0)) {
    throw std::invalid_argument{"SparkEngine: invalid speculation policy"};
  }
}

JobResult SparkEngine::run(const WorkloadProfile& workload, Cluster& cluster,
                           stats::Rng& rng) {
  const std::size_t n_nodes = cluster.node_count();

  // The imbalance is a property of the job's partitioning, consistent
  // across its stages — and, with stable partitioning, across consecutive
  // submissions of the job (the Figure 15/18 regime where one node's bucket
  // drains run after run).
  std::vector<double> weights;
  if (options_.stable_partitioning && cached_weights_.size() == n_nodes) {
    weights = cached_weights_;
  } else {
    weights = skew_weights(n_nodes, options_.partition_skew, rng);
    if (options_.stable_partitioning) cached_weights_ = weights;
  }

  JobExecution exec{options_, workload, cluster, rng, std::move(weights)};
  return exec.execute();
}

}  // namespace cloudrepro::bigdata
