#include "bigdata/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simnet/fluid_network.h"
#include "stats/descriptive.h"

namespace cloudrepro::bigdata {

namespace {

/// Makespan of `tasks` lognormally-jittered tasks greedily packed onto
/// `cores` cores (list scheduling).
double compute_makespan(int tasks, int cores, double mean_s, double cv,
                        stats::Rng& rng) {
  if (tasks <= 0) return 0.0;
  // Lognormal with the requested mean and coefficient of variation.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean_s) - sigma2 / 2.0;
  std::vector<double> core_load(static_cast<std::size_t>(cores), 0.0);
  for (int t = 0; t < tasks; ++t) {
    auto it = std::min_element(core_load.begin(), core_load.end());
    *it += rng.lognormal(mu, std::sqrt(sigma2));
  }
  return *std::max_element(core_load.begin(), core_load.end());
}

/// Per-node shuffle-volume weights with mean 1: Zipf-shaped over a random
/// node permutation (so the heavy node is not always node 0).
std::vector<double> skew_weights(std::size_t nodes, double skew, stats::Rng& rng) {
  std::vector<double> w(nodes, 1.0);
  if (skew <= 0.0) return w;
  double sum = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i) + 1.0, skew);
    sum += w[i];
  }
  const double norm = static_cast<double>(nodes) / sum;
  for (auto& v : w) v *= norm;
  const auto perm = rng.permutation(nodes);
  std::vector<double> shuffled(nodes);
  for (std::size_t i = 0; i < nodes; ++i) shuffled[perm[i]] = w[i];
  return shuffled;
}

/// Accumulates per-node egress timelines in fixed buckets from simulator
/// steps (steps may span several buckets; rates are constant within a step).
class TimelineRecorder {
 public:
  TimelineRecorder(std::size_t nodes, double interval_s)
      : interval_s_{interval_s}, gbit_in_bucket_(nodes, 0.0), timelines_(nodes) {}

  void observe(const simnet::FluidNetwork& net, double t_end, double dt) {
    if (interval_s_ <= 0.0) return;
    double t = t_end - dt;
    while (t < t_end - 1e-12) {
      const double bucket_end = (std::floor(t / interval_s_) + 1.0) * interval_s_;
      const double chunk = std::min(bucket_end, t_end) - t;
      for (std::size_t n = 0; n < gbit_in_bucket_.size(); ++n) {
        gbit_in_bucket_[n] += net.node_egress_rate(n) * chunk;
      }
      t += chunk;
      if (t >= bucket_end - 1e-12) {
        for (std::size_t n = 0; n < gbit_in_bucket_.size(); ++n) {
          TimelinePoint p;
          p.t = bucket_end;
          p.egress_gbps = gbit_in_bucket_[n] / interval_s_;
          p.budget_gbit = net.node_qos(n).budget_gbit().value_or(-1.0);
          timelines_[n].push_back(p);
          gbit_in_bucket_[n] = 0.0;
        }
      }
    }
  }

  std::vector<std::vector<TimelinePoint>> take() { return std::move(timelines_); }

 private:
  double interval_s_;
  std::vector<double> gbit_in_bucket_;
  std::vector<std::vector<TimelinePoint>> timelines_;
};

}  // namespace

SparkEngine::SparkEngine(EngineOptions options) : options_{options} {
  if (options.partition_skew < 0.0) {
    throw std::invalid_argument{"SparkEngine: partition_skew must be non-negative"};
  }
}

JobResult SparkEngine::run(const WorkloadProfile& workload, Cluster& cluster,
                           stats::Rng& rng) {
  const std::size_t n_nodes = cluster.node_count();

  simnet::FluidNetwork net;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    net.add_node(cluster.node(i).egress->clone(), cluster.node(i).line_rate_gbps);
  }

  TimelineRecorder recorder{n_nodes, options_.timeline_interval_s};
  if (options_.timeline_interval_s > 0.0) {
    net.set_step_observer([&recorder](const simnet::FluidNetwork& n, double t, double dt) {
      recorder.observe(n, t, dt);
    });
  }

  JobResult result;
  result.workload = workload.name;
  result.per_node_sent_gbit.assign(n_nodes, 0.0);
  result.node_egress_busy_s.assign(n_nodes, 0.0);

  // The imbalance is a property of the job's partitioning, consistent
  // across its stages — and, with stable partitioning, across consecutive
  // submissions of the job (the Figure 15/18 regime where one node's bucket
  // drains run after run).
  std::vector<double> weights;
  if (options_.stable_partitioning && cached_weights_.size() == n_nodes) {
    weights = cached_weights_;
  } else {
    weights = skew_weights(n_nodes, options_.partition_skew, rng);
    if (options_.stable_partitioning) cached_weights_ = weights;
  }

  // Per-run, per-node machine speed factors (non-network variability).
  std::vector<double> node_speed(n_nodes, 1.0);
  if (options_.machine_noise_cv > 0.0) {
    const double sigma2 = std::log(1.0 + options_.machine_noise_cv * options_.machine_noise_cv);
    for (auto& f : node_speed) f = rng.lognormal(-sigma2 / 2.0, std::sqrt(sigma2));
  }

  for (const auto& stage : workload.stages) {
    // Compute wave: barrier at the slowest node's makespan. CPU-credit
    // shaping (burstable instances) stretches a node's compute once its
    // credits deplete — the CPU analogue of the network token bucket.
    double stage_compute = 0.0;
    std::vector<double> node_makespan(n_nodes, 0.0);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      double makespan =
          node_speed[i] * compute_makespan(stage.tasks_per_node, cluster.cores_per_node(),
                                           stage.compute_s_mean, stage.compute_s_cv, rng);
      if (cluster.node(i).cpu.has_value()) {
        makespan = cluster.node(i).cpu->run_compute(makespan);
      }
      node_makespan[i] = makespan;
      stage_compute = std::max(stage_compute, makespan);
    }
    // Nodes that finished early idle at the barrier and earn CPU credits.
    for (std::size_t i = 0; i < n_nodes; ++i) {
      if (cluster.node(i).cpu.has_value()) {
        cluster.node(i).cpu->advance(stage_compute - node_makespan[i], 0.0);
      }
    }

    // Shuffle transfers overlap the stage's compute: map tasks stream their
    // output as they produce it (Spark pipelines shuffle writes/fetches with
    // task execution). The stage barrier falls at whichever finishes last.
    // This overlap is essential for reproducing the paper's token-bucket
    // effects — it keeps the network busy, so bucket budgets are not
    // silently replenished during compute-only phases.
    const double shuffle_start = net.now();
    std::vector<simnet::FlowId> flows;
    if (stage.shuffle_gbit_per_node > 0.0 && n_nodes > 1) {
      flows.reserve(n_nodes * (n_nodes - 1));
      for (std::size_t src = 0; src < n_nodes; ++src) {
        const double send_gbit = stage.shuffle_gbit_per_node * weights[src];
        const double per_peer = send_gbit / static_cast<double>(n_nodes - 1);
        result.per_node_sent_gbit[src] += send_gbit;
        for (std::size_t dst = 0; dst < n_nodes; ++dst) {
          if (dst == src) continue;
          flows.push_back(net.start_flow(src, dst, per_peer));
        }
      }
    }

    net.run_until(net.now() + stage_compute);
    if (!flows.empty()) {
      if (!net.run_until_flows_complete(options_.deadline_s)) {
        throw std::runtime_error{"SparkEngine: shuffle did not finish before the deadline"};
      }
      std::vector<double> stage_busy(n_nodes, 0.0);
      for (const auto id : flows) {
        const auto& f = net.flow(id);
        stage_busy[f.src] = std::max(stage_busy[f.src], f.end_time - shuffle_start);
      }
      for (std::size_t i = 0; i < n_nodes; ++i) {
        result.node_egress_busy_s[i] += stage_busy[i];
      }
    }
  }

  result.runtime_s = net.now();
  if (options_.timeline_interval_s > 0.0) result.timelines = recorder.take();

  // Straggler analysis on *effective egress rates* (sent / busy): mere load
  // imbalance keeps every node at the same QoS rate, so the ratio stays
  // near 1; a node whose bucket depleted collapses to the capped rate and
  // sticks out regardless of how much it had to send.
  result.node_effective_rate_gbps.assign(n_nodes, 0.0);
  std::vector<double> rates;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (result.node_egress_busy_s[i] > 0.0) {
      result.node_effective_rate_gbps[i] =
          result.per_node_sent_gbit[i] / result.node_egress_busy_s[i];
      rates.push_back(result.node_effective_rate_gbps[i]);
    }
  }
  if (!rates.empty()) {
    const auto slowest_it =
        std::min_element(rates.begin(), rates.end());
    // Map back to the node index (rates skips idle nodes).
    for (std::size_t i = 0; i < n_nodes; ++i) {
      if (result.node_egress_busy_s[i] > 0.0 &&
          result.node_effective_rate_gbps[i] == *slowest_it) {
        result.slowest_node = i;
        break;
      }
    }
    const double med = stats::median(rates);
    if (*slowest_it > 0.0) result.straggler_ratio = med / *slowest_it;
  }

  // Persist QoS state back into the cluster: the next job starts with
  // whatever budget this one left behind.
  for (std::size_t i = 0; i < n_nodes; ++i) {
    cluster.node(i).egress = net.node_qos(i).clone();
  }
  return result;
}

}  // namespace cloudrepro::bigdata
