#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bigdata/cluster.h"
#include "bigdata/workload.h"
#include "stats/rng.h"

namespace cloudrepro::bigdata {

/// One point of a per-node network timeline (Figures 15 and 18): the mean
/// egress rate over the sampling bucket, and the remaining token budget at
/// the bucket boundary (negative when the policy tracks no budget).
struct TimelinePoint {
  double t = 0.0;
  double egress_gbps = 0.0;
  double budget_gbit = -1.0;
};

/// Outcome of one job execution.
struct JobResult {
  std::string workload;
  double runtime_s = 0.0;

  /// Gbit each node pushed into shuffles.
  std::vector<double> per_node_sent_gbit;

  /// Total time each node's egress spent busy across all shuffles
  /// (per-stage: last sourced flow's end minus the stage's shuffle start).
  std::vector<double> node_egress_busy_s;

  /// Effective egress rate of each node while busy (sent / busy, Gbps).
  /// A healthy node runs near the high QoS; a bucket-depleted node's
  /// effective rate collapses toward the capped rate.
  std::vector<double> node_effective_rate_gbps;

  /// The node with the lowest effective egress rate, and how much faster
  /// the median node was (median rate / slowest rate). Load imbalance alone
  /// keeps this near 1 (all nodes at the same QoS); only QoS throttling of
  /// *some* nodes pushes it up — >1.5 flags a straggler (Figure 18, F4.3).
  std::size_t slowest_node = 0;
  double straggler_ratio = 1.0;

  /// Per-node egress timelines (empty when recording is disabled).
  std::vector<std::vector<TimelinePoint>> timelines;

  bool has_straggler(double threshold = 1.5) const noexcept {
    return straggler_ratio >= threshold;
  }
};

struct EngineOptions {
  /// Zipf exponent of per-node shuffle-volume weights. 0 = perfectly
  /// balanced; positive values model the "(imbalanced) big data
  /// applications" whose interaction with token buckets creates stragglers
  /// (F4.3).
  double partition_skew = 0.0;

  /// Keep the same node-to-load assignment across consecutive runs (the
  /// same input partitioning re-submitted repeatedly, as in Figures 15/18).
  /// When false, every job draws a fresh assignment, spreading the drain
  /// evenly across nodes.
  bool stable_partitioning = true;

  /// Timeline sampling interval; 0 disables timeline recording.
  double timeline_interval_s = 0.0;

  /// Non-network machine variability (CPU steal, memory bandwidth, I/O):
  /// each run draws a per-node lognormal speed factor with this coefficient
  /// of variation and scales compute times by it. The paper notes that when
  /// "running experiments directly on these clouds we cannot differentiate
  /// the effects of network variability from other sources" (Section 4.1) —
  /// set this non-zero to model direct-on-cloud runs (Figure 13); leave 0
  /// for the isolated-emulation experiments (Figures 15-19).
  double machine_noise_cv = 0.0;

  /// Safety horizon for a single job.
  double deadline_s = 24.0 * 3600.0;
};

/// Spark-like execution engine: runs a workload's stages as compute waves
/// separated by all-to-all shuffles over a fluid-simulated network built
/// from the cluster's per-node QoS policies. QoS state (token budgets,
/// warm-up paths) persists in the Cluster across runs, so back-to-back jobs
/// interact exactly as the paper describes: "an application influences not
/// only its own runtime, but also future applications' runtimes" (F4.2).
class SparkEngine {
 public:
  explicit SparkEngine(EngineOptions options = {});

  JobResult run(const WorkloadProfile& workload, Cluster& cluster, stats::Rng& rng);

  const EngineOptions& options() const noexcept { return options_; }

 private:
  EngineOptions options_;
  /// Cached per-node load weights for stable partitioning.
  std::vector<double> cached_weights_;
};

}  // namespace cloudrepro::bigdata
