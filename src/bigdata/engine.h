#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bigdata/cluster.h"
#include "bigdata/workload.h"
#include "faults/fault_plan.h"
#include "stats/rng.h"

namespace cloudrepro::obs {
class MetricsRegistry;
class Tracer;
}  // namespace cloudrepro::obs

namespace cloudrepro::bigdata {

/// One point of a per-node network timeline (Figures 15 and 18): the mean
/// egress rate over the sampling bucket, and the remaining token budget at
/// the bucket boundary (negative when the policy tracks no budget).
struct TimelinePoint {
  double t = 0.0;
  double egress_gbps = 0.0;
  double budget_gbit = -1.0;
};

/// Counters quantifying what fault recovery cost a job — retries, lost work,
/// speculation volume. Benches use these to measure whether mitigation
/// actually restores CI width and i.i.d.-ness or merely trades runtime for
/// variance.
struct RecoveryStats {
  int task_retries = 0;           ///< Stage-level re-executions after a node loss.
  int speculative_launches = 0;   ///< Straggler transfers re-executed elsewhere.
  double speculated_gbit = 0.0;   ///< Shuffle volume moved by speculation.
  double lost_compute_s = 0.0;    ///< Compute thrown away by failures.
  double lost_gbit = 0.0;         ///< In-flight shuffle bytes lost to failures.
  double backoff_wait_s = 0.0;    ///< Time spent in retry backoff.
  double retransmitted_gbit = 0.0;///< Bytes burned by loss bursts (link flap).
  int nodes_lost = 0;             ///< Nodes that died during this job.
};

/// Outcome of one job execution.
struct JobResult {
  std::string workload;
  double runtime_s = 0.0;

  /// Gbit each node pushed into shuffles.
  std::vector<double> per_node_sent_gbit;

  /// Total time each node's egress spent busy across all shuffles
  /// (per-stage: last sourced flow's end minus the stage's shuffle start).
  std::vector<double> node_egress_busy_s;

  /// Effective egress rate of each node while busy (sent / busy, Gbps).
  /// A healthy node runs near the high QoS; a bucket-depleted node's
  /// effective rate collapses toward the capped rate.
  std::vector<double> node_effective_rate_gbps;

  /// The node with the lowest effective egress rate, and how much faster
  /// the median node was (median rate / slowest rate). Load imbalance alone
  /// keeps this near 1 (all nodes at the same QoS); only QoS throttling of
  /// *some* nodes pushes it up — >1.5 flags a straggler (Figure 18, F4.3).
  std::size_t slowest_node = 0;
  double straggler_ratio = 1.0;

  /// Completion-time view of the same phenomenon: slowest node's total
  /// egress-busy time over the median node's. This is the ratio mitigation
  /// can actually repair — speculation cannot make a throttled NIC faster,
  /// but it can stop the job from waiting on it.
  double completion_straggler_ratio = 1.0;

  /// Fault-recovery accounting (all zero on fault-free runs).
  RecoveryStats recovery;

  /// Per-node egress timelines (empty when recording is disabled).
  std::vector<std::vector<TimelinePoint>> timelines;

  bool has_straggler(double threshold = 1.5) const noexcept {
    return straggler_ratio >= threshold;
  }
};

/// Bounded exponential backoff for task retry after a node loss, Spark's
/// `spark.task.maxFailures` analogue.
struct RetryPolicy {
  int max_attempts = 4;        ///< Stage retries before the job aborts.
  double backoff_base_s = 1.0;
  double backoff_factor = 2.0;
  double backoff_cap_s = 60.0;

  /// Delay before retry number `attempt` (1-based).
  double delay(int attempt) const noexcept;
};

/// Opt-in speculative re-execution of straggling shuffle transfers
/// (Spark's `spark.speculation`). A source whose current egress rate falls
/// below median / `slowdown_threshold` has its remaining transfers stopped
/// and re-launched from the fastest healthy node.
struct SpeculationPolicy {
  bool enabled = false;
  double slowdown_threshold = 2.0;  ///< Flag nodes slower than median/this.
  double check_interval_s = 30.0;   ///< Straggler scan cadence (sim time).
  double min_remaining_gbit = 1.0;  ///< Don't speculate nearly-done transfers.
};

struct EngineOptions {
  /// Zipf exponent of per-node shuffle-volume weights. 0 = perfectly
  /// balanced; positive values model the "(imbalanced) big data
  /// applications" whose interaction with token buckets creates stragglers
  /// (F4.3).
  double partition_skew = 0.0;

  /// Keep the same node-to-load assignment across consecutive runs (the
  /// same input partitioning re-submitted repeatedly, as in Figures 15/18).
  /// When false, every job draws a fresh assignment, spreading the drain
  /// evenly across nodes.
  bool stable_partitioning = true;

  /// Timeline sampling interval; 0 disables timeline recording.
  double timeline_interval_s = 0.0;

  /// Non-network machine variability (CPU steal, memory bandwidth, I/O):
  /// each run draws a per-node lognormal speed factor with this coefficient
  /// of variation and scales compute times by it. The paper notes that when
  /// "running experiments directly on these clouds we cannot differentiate
  /// the effects of network variability from other sources" (Section 4.1) —
  /// set this non-zero to model direct-on-cloud runs (Figure 13); leave 0
  /// for the isolated-emulation experiments (Figures 15-19).
  double machine_noise_cv = 0.0;

  /// Safety horizon for a single job.
  double deadline_s = 24.0 * 3600.0;

  /// Fault schedule applied to every run, with times relative to job start.
  /// Empty = fault-free (the default, and bit-compatible with the
  /// pre-faults engine).
  faults::FaultPlan fault_plan;

  RetryPolicy retry;
  SpeculationPolicy speculation;

  /// Observability sinks (either may be null; see src/obs). When set, each
  /// run wires them through the fluid network and fault injector, records
  /// stage / job spans and crash / retry / speculation instants in simulated
  /// time, and bumps the `engine.*` counters — which reconcile exactly with
  /// the job's `RecoveryStats`. Ignored when CLOUDREPRO_OBS compiles the
  /// instrumentation out.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Median-over-slowest straggler ratio from per-node effective rates, with
/// the degenerate paths handled explicitly: fewer than two busy nodes can
/// never evidence a straggler (ratio 1), and a zero/near-zero slowest rate
/// is clamped so the ratio stays finite instead of dividing by ~0.
double compute_straggler_ratio(std::span<const double> effective_rates) noexcept;

/// Spark-like execution engine: runs a workload's stages as compute waves
/// separated by all-to-all shuffles over a fluid-simulated network built
/// from the cluster's per-node QoS policies. QoS state (token budgets,
/// warm-up paths) persists in the Cluster across runs, so back-to-back jobs
/// interact exactly as the paper describes: "an application influences not
/// only its own runtime, but also future applications' runtimes" (F4.2).
///
/// With a non-empty `EngineOptions::fault_plan`, the run replays the plan's
/// events at their exact simulated times: crashed nodes lose their in-flight
/// work, which survivors retry after bounded exponential backoff;
/// slowdowns/flaps degrade the fluid network; token theft drains budgets.
/// Health transitions are written back to the Cluster. All of it is a pure
/// function of (workload, cluster state, plan, seed).
class SparkEngine {
 public:
  explicit SparkEngine(EngineOptions options = {});

  JobResult run(const WorkloadProfile& workload, Cluster& cluster, stats::Rng& rng);

  const EngineOptions& options() const noexcept { return options_; }

 private:
  EngineOptions options_;
  /// Cached per-node load weights for stable partitioning.
  std::vector<double> cached_weights_;
};

}  // namespace cloudrepro::bigdata
