#include "bigdata/cluster.h"

#include <stdexcept>

#include "cloud/tc_emulator.h"
#include "simnet/token_bucket.h"

namespace cloudrepro::bigdata {

const char* to_string(NodeHealth health) noexcept {
  switch (health) {
    case NodeHealth::kUp: return "up";
    case NodeHealth::kDegraded: return "degraded";
    case NodeHealth::kFailed: return "failed";
  }
  return "unknown";
}

Cluster::Cluster(int cores_per_node, std::vector<Node> nodes)
    : cores_per_node_{cores_per_node}, nodes_{std::move(nodes)} {
  if (cores_per_node <= 0) throw std::invalid_argument{"Cluster: cores_per_node must be positive"};
  if (nodes_.size() < 2) throw std::invalid_argument{"Cluster: need at least 2 nodes"};
  for (const auto& n : nodes_) {
    if (!n.egress) throw std::invalid_argument{"Cluster: node without egress policy"};
    if (n.line_rate_gbps <= 0.0) throw std::invalid_argument{"Cluster: invalid line rate"};
  }
}

Cluster Cluster::uniform(int node_count, int cores_per_node,
                         const simnet::QosPolicy& prototype, double line_rate_gbps) {
  if (node_count < 2) throw std::invalid_argument{"Cluster::uniform: need at least 2 nodes"};
  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    nodes.push_back(Node{prototype.clone(), line_rate_gbps, std::nullopt});
  }
  return Cluster{cores_per_node, std::move(nodes)};
}

Cluster Cluster::from_cloud(int node_count, int cores_per_node,
                            const cloud::CloudProfile& profile, stats::Rng& rng) {
  if (node_count < 2) throw std::invalid_argument{"Cluster::from_cloud: need at least 2 nodes"};
  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    auto vm = profile.create_vm(rng);
    nodes.push_back(Node{std::move(vm.egress), vm.line_rate_gbps, std::nullopt});
  }
  return Cluster{cores_per_node, std::move(nodes)};
}

void Cluster::reset_network() {
  for (auto& n : nodes_) {
    n.egress->reset();
    if (n.cpu.has_value()) n.cpu->reset();
    n.health = NodeHealth::kUp;
    n.degrade_factor = 1.0;
  }
}

void Cluster::fail_node(std::size_t i) {
  auto& n = nodes_.at(i);
  n.health = NodeHealth::kFailed;
  n.degrade_factor = 1.0;
}

void Cluster::degrade_node(std::size_t i, double factor) {
  if (factor <= 0.0 || factor >= 1.0) {
    throw std::invalid_argument{"Cluster::degrade_node: factor must be in (0, 1)"};
  }
  auto& n = nodes_.at(i);
  if (n.health == NodeHealth::kFailed) return;  // Dead nodes don't degrade.
  n.health = NodeHealth::kDegraded;
  n.degrade_factor = factor;
}

void Cluster::restore_node(std::size_t i) {
  auto& n = nodes_.at(i);
  if (n.health == NodeHealth::kFailed) return;
  n.health = NodeHealth::kUp;
  n.degrade_factor = 1.0;
}

std::size_t Cluster::healthy_node_count() const noexcept {
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    if (n.health != NodeHealth::kFailed) ++count;
  }
  return count;
}

void Cluster::attach_cpu_credits(const cloud::CpuCreditConfig& config) {
  for (auto& n : nodes_) n.cpu.emplace(config);
}

std::optional<double> Cluster::cpu_credits(std::size_t i) const {
  const auto& n = nodes_.at(i);
  if (!n.cpu.has_value()) return std::nullopt;
  return n.cpu->credits();
}

void Cluster::set_cpu_credits(double credits) {
  for (auto& n : nodes_) {
    if (n.cpu.has_value()) n.cpu->set_credits(credits);
  }
}

void Cluster::set_token_budgets(double gbit) {
  for (auto& n : nodes_) {
    if (auto* tb = dynamic_cast<simnet::TokenBucketQos*>(n.egress.get())) {
      tb->bucket().set_budget(gbit);
    } else if (auto* tc = dynamic_cast<cloud::TcEmulator*>(n.egress.get())) {
      tc->bucket().set_budget(gbit);
    }
  }
}

std::optional<double> Cluster::token_budget(std::size_t i) const {
  return nodes_.at(i).egress->budget_gbit();
}

void Cluster::rest(double seconds) {
  if (seconds <= 0.0) return;
  for (auto& n : nodes_) {
    n.egress->advance(seconds, 0.0);
    if (n.cpu.has_value()) n.cpu->advance(seconds, 0.0);
  }
}

}  // namespace cloudrepro::bigdata
