#include "bigdata/workload.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace cloudrepro::bigdata {

double WorkloadProfile::total_shuffle_gbit_per_node() const noexcept {
  double total = 0.0;
  for (const auto& s : stages) total += s.shuffle_gbit_per_node;
  return total;
}

double WorkloadProfile::nominal_compute_s(int cores_per_node) const noexcept {
  double total = 0.0;
  for (const auto& s : stages) {
    const double waves = std::ceil(static_cast<double>(s.tasks_per_node) /
                                   static_cast<double>(cores_per_node));
    total += waves * s.compute_s_mean;
  }
  return total;
}

double WorkloadProfile::network_intensity(int cores_per_node) const noexcept {
  const double compute = nominal_compute_s(cores_per_node);
  if (compute <= 0.0) return 0.0;
  return total_shuffle_gbit_per_node() / compute;
}

// ---- HiBench -----------------------------------------------------------------
//
// Stage parameters are calibrated for a 12-node x 16-core cluster against a
// c5.xlarge-style network (10 Gbps high / 1 Gbps capped): base runtimes in
// the few-hundred-second range of Figure 16, with the network-heavy
// applications (TS, WC) losing 25-50% when the token budget starts empty and
// the compute-dominated ones (KM, BS) barely moving.

WorkloadProfile hibench_terasort() {
  WorkloadProfile w;
  w.name = "TS";
  w.suite = "HiBench";
  w.stages = {
      {"map-sort", 64, 30.0, 0.15, 240.0},
      {"reduce-merge", 64, 30.0, 0.15, 60.0},
      {"write-output", 16, 2.0, 0.10, 0.0},
  };
  return w;
}

WorkloadProfile hibench_wordcount() {
  WorkloadProfile w;
  w.name = "WC";
  w.suite = "HiBench";
  w.stages = {
      {"tokenize-count", 64, 25.0, 0.15, 200.0},
      {"aggregate", 32, 30.0, 0.12, 25.0},
  };
  return w;
}

WorkloadProfile hibench_sort() {
  WorkloadProfile w;
  w.name = "S";
  w.suite = "HiBench";
  w.stages = {
      {"sample-sort", 48, 23.3, 0.15, 110.0},
      {"merge", 48, 16.7, 0.12, 12.0},
  };
  return w;
}

WorkloadProfile hibench_bayes() {
  WorkloadProfile w;
  w.name = "BS";
  w.suite = "HiBench";
  w.stages = {
      {"training", 64, 30.0, 0.18, 145.0},
      {"classify", 32, 40.0, 0.15, 10.0},
  };
  return w;
}

WorkloadProfile hibench_kmeans() {
  WorkloadProfile w;
  w.name = "KM";
  w.suite = "HiBench";
  w.stages.push_back({"read-features", 32, 20.0, 0.12, 60.0});
  for (int iter = 1; iter <= 5; ++iter) {
    w.stages.push_back({"iteration-" + std::to_string(iter), 32, 12.0, 0.12, 10.0});
  }
  return w;
}

std::span<const WorkloadProfile> hibench_suite() {
  static const std::vector<WorkloadProfile> kSuite = {
      hibench_terasort(), hibench_wordcount(), hibench_sort(), hibench_bayes(),
      hibench_kmeans()};
  return kSuite;
}

// ---- TPC-DS ------------------------------------------------------------------

namespace {

/// Builds a two-stage query profile. `compute1_s`/`compute2_s` are nominal
/// per-node compute seconds on 16 cores (tasks = 32/node, so mean task time
/// is compute/2); shuffles are Gbit per node.
WorkloadProfile make_query(int number, double compute1_s, double shuffle1_gbit,
                           double compute2_s, double shuffle2_gbit) {
  WorkloadProfile w;
  w.name = "Q" + std::to_string(number);
  w.suite = "TPC-DS";
  w.stages = {
      {"scan-join", 32, compute1_s / 2.0, 0.20, shuffle1_gbit},
      {"aggregate-sort", 32, compute2_s / 2.0, 0.15, shuffle2_gbit},
  };
  return w;
}

std::vector<WorkloadProfile> build_tpcds_suite() {
  // Network-demand tiers calibrated against Figures 17 and 19:
  //  - heavy (19, 65, 68): slowdowns up to ~3-4x with an empty budget;
  //  - medium (7, 27, 46, 53, 59, 63, 70, 79, 89, 98): ~1.3-2.2x;
  //  - light (3, 34, 42, 43, 52, 55, 73, 82): nearly budget-agnostic,
  //    with Q82 the compute-bound extreme the paper contrasts with Q65.
  // Shuffle volumes chosen so that, with the mild partition skew the
  // Figure 17/18/19 benches use (heavy node ~1.6x the mean), the heavy
  // queries throttle even at mid-size budgets while the light ones never
  // notice the bucket.
  std::vector<WorkloadProfile> suite;
  suite.push_back(make_query(3, 18.0, 2.0, 7.0, 1.0));
  suite.push_back(make_query(7, 20.0, 20.0, 10.0, 4.0));
  suite.push_back(make_query(19, 15.0, 35.0, 8.0, 6.0));
  suite.push_back(make_query(27, 24.0, 30.0, 11.0, 3.0));
  suite.push_back(make_query(34, 20.0, 22.0, 8.0, 2.0));
  suite.push_back(make_query(42, 15.0, 6.0, 7.0, 1.0));
  suite.push_back(make_query(43, 21.0, 22.0, 9.0, 2.0));
  suite.push_back(make_query(46, 25.0, 35.0, 12.0, 6.0));
  suite.push_back(make_query(52, 14.0, 3.0, 6.0, 1.0));
  suite.push_back(make_query(53, 18.0, 24.0, 8.0, 3.0));
  suite.push_back(make_query(55, 12.0, 2.0, 6.0, 1.0));
  suite.push_back(make_query(59, 30.0, 70.0, 12.0, 12.0));
  suite.push_back(make_query(63, 17.0, 20.0, 8.0, 2.0));
  suite.push_back(make_query(65, 20.0, 80.0, 10.0, 15.0));
  suite.push_back(make_query(68, 18.0, 70.0, 9.0, 12.0));
  suite.push_back(make_query(70, 28.0, 30.0, 14.0, 5.0));
  suite.push_back(make_query(73, 16.0, 4.0, 8.0, 1.0));
  suite.push_back(make_query(79, 20.0, 28.0, 10.0, 5.0));
  suite.push_back(make_query(82, 30.0, 2.0, 25.0, 1.0));
  suite.push_back(make_query(89, 19.0, 26.0, 9.0, 3.0));
  suite.push_back(make_query(98, 14.0, 40.0, 7.0, 8.0));
  return suite;
}

}  // namespace

std::span<const WorkloadProfile> tpcds_suite() {
  static const std::vector<WorkloadProfile> kSuite = build_tpcds_suite();
  return kSuite;
}

const WorkloadProfile& tpcds_query(int number) {
  const std::string name = "Q" + std::to_string(number);
  for (const auto& q : tpcds_suite()) {
    if (q.name == name) return q;
  }
  throw std::out_of_range{"tpcds_query: " + name + " is not in the Figure 17 suite"};
}

// ---- Extensions --------------------------------------------------------------

std::span<const WorkloadProfile> hibench_extended_suite() {
  static const std::vector<WorkloadProfile> kSuite = [] {
    std::vector<WorkloadProfile> suite;
    // PageRank: iterative like K-Means but with a heavier per-iteration
    // edge-exchange shuffle.
    WorkloadProfile pr;
    pr.name = "PR";
    pr.suite = "HiBench";
    pr.stages.push_back({"load-graph", 32, 18.0, 0.12, 40.0});
    for (int iter = 1; iter <= 4; ++iter) {
      pr.stages.push_back({"rank-iteration-" + std::to_string(iter), 32, 15.0, 0.12, 30.0});
    }
    suite.push_back(pr);

    // Join: two scans feeding one large repartition join.
    WorkloadProfile join;
    join.name = "JN";
    join.suite = "HiBench";
    join.stages = {
        {"scan-left", 48, 16.7, 0.15, 80.0},
        {"scan-right", 48, 10.0, 0.15, 60.0},
        {"join-output", 32, 15.0, 0.12, 10.0},
    };
    suite.push_back(join);

    // Aggregation: scan-heavy with a modest combine shuffle.
    WorkloadProfile agg;
    agg.name = "AG";
    agg.suite = "HiBench";
    agg.stages = {
        {"scan-group", 64, 20.0, 0.15, 25.0},
        {"final-aggregate", 16, 8.0, 0.10, 2.0},
    };
    suite.push_back(agg);
    return suite;
  }();
  return kSuite;
}

std::span<const WorkloadProfile> tpch_suite() {
  // Short-lived analytics queries: seconds-scale compute, scan-bound
  // (Q1, Q6) through join-heavy (Q9, Q21). Same make_query conventions as
  // TPC-DS (two stages, 32 tasks/node).
  static const std::vector<WorkloadProfile> kSuite = [] {
    std::vector<WorkloadProfile> suite;
    const auto tpch = [](int number, double c1, double s1, double c2, double s2) {
      auto w = make_query(number, c1, s1, c2, s2);
      w.suite = "TPC-H";
      return w;
    };
    suite.push_back(tpch(1, 16.0, 1.5, 5.0, 0.5));    // Pricing summary: scan.
    suite.push_back(tpch(3, 14.0, 14.0, 6.0, 3.0));   // Shipping priority.
    suite.push_back(tpch(5, 18.0, 24.0, 8.0, 5.0));   // Local supplier volume.
    suite.push_back(tpch(6, 10.0, 0.8, 3.0, 0.2));    // Forecast revenue: scan.
    suite.push_back(tpch(9, 18.0, 60.0, 8.0, 12.0));  // Product profit: join-heavy.
    suite.push_back(tpch(13, 12.0, 10.0, 6.0, 2.0));  // Customer distribution.
    suite.push_back(tpch(18, 20.0, 30.0, 9.0, 6.0));  // Large-volume customer.
    suite.push_back(tpch(21, 24.0, 38.0, 11.0, 8.0)); // Suppliers who kept waiting.
    return suite;
  }();
  return kSuite;
}

const WorkloadProfile& tpch_query(int number) {
  const std::string name = "Q" + std::to_string(number);
  for (const auto& q : tpch_suite()) {
    if (q.name == name) return q;
  }
  throw std::out_of_range{"tpch_query: " + name + " is not in the TPC-H suite"};
}

}  // namespace cloudrepro::bigdata
