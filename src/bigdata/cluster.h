#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cloud/cpu_credits.h"
#include "cloud/instances.h"
#include "simnet/qos.h"
#include "stats/rng.h"

namespace cloudrepro::bigdata {

/// Liveness of a worker node. Fault plans (src/faults) drive the
/// transitions: up -> degraded (transient slowdown, link flap) -> up again,
/// or up/degraded -> failed (crash, spot revocation). Failed is terminal
/// until `reset_network()` hands out fresh VMs.
enum class NodeHealth { kUp, kDegraded, kFailed };

const char* to_string(NodeHealth health) noexcept;

/// A cluster of worker nodes, each with its own egress QoS policy — every VM
/// has its *own* token bucket (F4.4), which is what makes straggler
/// behaviour and non-i.i.d. repetitions possible.
class Cluster {
 public:
  struct Node {
    std::unique_ptr<simnet::QosPolicy> egress;
    double line_rate_gbps = 10.0;
    /// CPU-credit shaping for burstable instances (the paper's closing
    /// remark that providers token-bucket CPU too); nullopt = unshaped CPU.
    std::optional<cloud::CpuCreditBucket> cpu;
    NodeHealth health = NodeHealth::kUp;
    /// NIC speed multiplier while degraded (1.0 when up).
    double degrade_factor = 1.0;
  };

  Cluster(int cores_per_node, std::vector<Node> nodes);

  /// Homogeneous cluster whose nodes all clone `prototype`.
  static Cluster uniform(int node_count, int cores_per_node,
                         const simnet::QosPolicy& prototype,
                         double line_rate_gbps);

  /// Cluster built from fresh VM incarnations of a cloud profile — each
  /// node's realized policy differs slightly, as in real allocations.
  static Cluster from_cloud(int node_count, int cores_per_node,
                            const cloud::CloudProfile& profile, stats::Rng& rng);

  int cores_per_node() const noexcept { return cores_per_node_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  Node& node(std::size_t i) { return nodes_.at(i); }
  const Node& node(std::size_t i) const { return nodes_.at(i); }

  /// Resets every node's policy — the "create a fresh set of VMs for every
  /// experiment" guideline (F5.4).
  void reset_network();

  /// Sets every token-bucket node's budget (Figures 15-19 sweep this).
  /// No-op on nodes without budget-tracked policies.
  void set_token_budgets(double gbit);

  /// Remaining budget of a node, if its policy tracks one.
  std::optional<double> token_budget(std::size_t i) const;

  /// Attaches CPU-credit shaping to every node (burstable instances).
  void attach_cpu_credits(const cloud::CpuCreditConfig& config);

  /// Remaining CPU credits of a node, if CPU shaping is attached.
  std::optional<double> cpu_credits(std::size_t i) const;

  /// Sets every CPU-shaped node's credit balance.
  void set_cpu_credits(double credits);

  /// Lets the whole cluster rest (network and CPU buckets replenish).
  /// Failed nodes stay failed — resting does not resurrect hardware.
  void rest(double seconds);

  // --- Node health (driven by the active fault plan) ------------------------

  NodeHealth node_health(std::size_t i) const { return nodes_.at(i).health; }

  /// Marks a node permanently failed (crash / completed spot revocation).
  void fail_node(std::size_t i);

  /// Marks a node degraded with the given NIC speed factor in (0, 1).
  void degrade_node(std::size_t i, double factor);

  /// Returns a degraded node to full health; failed nodes stay failed
  /// (only `reset_network()` — fresh VMs — revives them).
  void restore_node(std::size_t i);

  /// Nodes currently able to take work (up or degraded).
  std::size_t healthy_node_count() const noexcept;

 private:
  int cores_per_node_;
  std::vector<Node> nodes_;
};

}  // namespace cloudrepro::bigdata
