#pragma once

#include <span>
#include <string>
#include <vector>

namespace cloudrepro::bigdata {

/// One stage of a Spark-like job: a wave of parallel tasks followed
/// (optionally) by an all-to-all shuffle of its output.
struct StageProfile {
  std::string name;
  int tasks_per_node = 16;        ///< Parallel tasks scheduled on each node.
  double compute_s_mean = 10.0;   ///< Mean per-task compute time.
  double compute_s_cv = 0.15;     ///< Coefficient of variation (lognormal).
  /// Gbit each node must send into the following shuffle (0 = no shuffle,
  /// e.g. the final collect/output stage).
  double shuffle_gbit_per_node = 0.0;
};

/// A complete workload: the unit both HiBench applications and TPC-DS
/// queries are described as. Stage parameters are calibrated so the
/// workloads' *network-intensity ordering* matches the paper's findings
/// (TS/WC most network-dependent among HiBench — Figure 16; queries 65/68
/// network-heavy vs 82 network-light — Figures 17 and 19).
struct WorkloadProfile {
  std::string name;
  std::string suite;  ///< "HiBench" or "TPC-DS".
  std::vector<StageProfile> stages;

  /// Total shuffle volume per node across all stages (Gbit).
  double total_shuffle_gbit_per_node() const noexcept;

  /// Expected serial compute time per node, ignoring task-time jitter.
  double nominal_compute_s(int cores_per_node) const noexcept;

  /// Shuffle Gbit per nominal compute second — the knob that determines
  /// how exposed a workload is to network throttling.
  double network_intensity(int cores_per_node = 16) const noexcept;
};

// ---- HiBench (Table 4 / Figures 3a, 13, 15, 16) -----------------------------

WorkloadProfile hibench_terasort();   ///< TS — most network-intensive.
WorkloadProfile hibench_wordcount();  ///< WC — network-intensive.
WorkloadProfile hibench_sort();       ///< S.
WorkloadProfile hibench_bayes();      ///< BS.
WorkloadProfile hibench_kmeans();     ///< KM — iterative, compute-dominated.

/// The five HiBench applications of Figure 16, in the paper's {TS, WC, S,
/// BS, KM} naming.
std::span<const WorkloadProfile> hibench_suite();

// ---- TPC-DS (Figures 3b, 13, 17, 18, 19) ------------------------------------

/// The 21 TPC-DS queries of Figure 17 (SF-2000 profiles):
/// 3, 7, 19, 27, 34, 42, 43, 46, 52, 53, 55, 59, 63, 65, 68, 70, 73, 79,
/// 82, 89, 98.
std::span<const WorkloadProfile> tpcds_suite();

/// Lookup a TPC-DS query profile by number; throws std::out_of_range.
const WorkloadProfile& tpcds_query(int number);

// ---- Extensions beyond the paper's evaluated set ----------------------------

/// Additional HiBench applications (PageRank, Join, Aggregation) for wider
/// workload coverage; same calibration conventions as the core five.
std::span<const WorkloadProfile> hibench_extended_suite();

/// A TPC-H-style suite of short-lived analytics queries — the workload
/// class the paper's 10-30/5-30 access patterns mimic ("short-lived
/// analytics queries, such as TPC-H"). Eight representative queries
/// (1, 3, 5, 6, 9, 13, 18, 21) spanning scan-bound to join-heavy.
std::span<const WorkloadProfile> tpch_suite();

/// Lookup a TPC-H query profile by number; throws std::out_of_range.
const WorkloadProfile& tpch_query(int number);

}  // namespace cloudrepro::bigdata
