// cloudrepro — scenario-catalog orchestrator CLI.
//
// Stream discipline: stdout carries ONLY the deterministic experiment
// output (canonical summary JSON for `run`, one summary per line for
// `suite`, canonical spec JSON for `describe`). Everything operational —
// cache hit state, executed/resumed counts, progress — goes to stderr.
// That split is what lets CI run a scenario twice and `cmp` the stdout
// bytes regardless of cache state or thread count.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error,
//             3 campaign interrupted (resumable) — by --max-measurements
//               or by SIGINT/SIGTERM, which flush the journal first.

#include <csignal>

#include <atomic>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "scenario/registry.h"
#include "scenario/result_store.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "serve/worker.h"
#include "shard/local.h"

namespace {

// SIGINT/SIGTERM request cooperative cancellation: the campaign stops
// starting new measurements, finishes and journals the in-flight ones,
// closes the journal, and run_one returns 3 (resumable) — the same
// contract as --max-measurements exhaustion. Only async-signal-safe
// atomics are touched in the handler.
volatile std::sig_atomic_t g_signal = 0;
std::atomic<bool> g_cancel{false};

extern "C" void handle_interrupt(int sig) {
  g_signal = sig;
  g_cancel.store(true, std::memory_order_relaxed);
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
}

using cloudrepro::scenario::ResultStore;
using cloudrepro::scenario::RunOptions;
using cloudrepro::scenario::ScenarioRegistry;
using cloudrepro::scenario::ScenarioSpec;

int usage(std::ostream& os, int code) {
  os << "usage: cloudrepro <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                     catalog scenarios and suites\n"
        "  describe <scenario>      canonical spec JSON (stdout) + shape (stderr)\n"
        "  run <scenario>           run one scenario; summary JSON on stdout\n"
        "  suite <suite>            run every scenario of a suite (one summary per line)\n"
        "  cache stats              list cache entries\n"
        "  cache verify             integrity-check every entry (exit 1 on damage)\n"
        "  cache clear              remove every cache entry\n"
        "  cache evict <scenario>   remove one scenario's entry\n"
        "  serve                    result-serving daemon over the cache (TCP,\n"
        "                           line-delimited JSON; concurrent GETs for an\n"
        "                           uncached scenario run its campaign once)\n"
        "  fetch <scenario>         GET a summary from a running serve daemon;\n"
        "                           stdout bytes identical to `run`\n"
        "  work                     shard worker: pull campaign cells from a\n"
        "                           serve coordinator, run them, push journal\n"
        "                           records back\n"
        "\n"
        "<scenario> is a catalog name, a path ending in .json, or - (stdin).\n"
        "\n"
        "options (run / suite / cache):\n"
        "  --threads N              campaign workers; 0 = all cores (default 0).\n"
        "                           For suite, the N workers are ONE shared\n"
        "                           work-stealing budget across every member\n"
        "                           scenario (output bytes unchanged)\n"
        "  --seed S                 master seed (default: the scenario's)\n"
        "  --cache-dir PATH         result cache root (default: $CLOUDREPRO_CACHE_DIR\n"
        "                           or .cloudrepro-cache)\n"
        "  --no-cache               run without the result store\n"
        "  --cache-max-bytes N      LRU-evict cache entries to keep the cache\n"
        "                           under N bytes (0 = unbounded, the default)\n"
        "  --max-measurements N     stop after N new measurements (journal resumes)\n"
        "  --adaptive               adaptive CONFIRM stopping: each cell runs until\n"
        "                           its quantile-CI relative half-width meets the\n"
        "                           scenario's confirm.error_bound (repetitions\n"
        "                           becomes a cap); changes the content hash, so it\n"
        "                           caches separately (run / suite / describe)\n"
        "  --error-bound B          override confirm.error_bound (implies --adaptive)\n"
        "  --out FILE               write the summary to FILE instead of stdout\n"
        "  --csv FILE               write config,treatment,repetition,value CSV\n"
        "  --shards N               (run) split the campaign's cells across N\n"
        "                           in-process shard workers and merge their\n"
        "                           journals; output bytes identical to a\n"
        "                           single-node run (requires the cache)\n"
        "  --workers T              (run --shards) threads per shard worker\n"
        "                           for non-adaptive repetitions (default 1)\n"
        "\n"
        "options (serve):\n"
        "  --listen HOST:PORT       bind address (default 127.0.0.1:9119;\n"
        "                           port 0 = ephemeral, printed on stderr)\n"
        "  --max-connections N      connection table bound (default 64)\n"
        "  --max-inflight N         concurrent campaign bound; GETs beyond it\n"
        "                           get a \"busy\" error (default 16)\n"
        "  --peer HOST:PORT         read-through peer: ask another serve daemon\n"
        "                           before executing a campaign locally\n"
        "\n"
        "options (fetch):\n"
        "  --server HOST:PORT       serve daemon address (default 127.0.0.1:9119)\n"
        "  --list                   print the server's catalog + cache (JSON)\n"
        "  --stats                  print the server's metrics snapshot (JSON)\n"
        "  --timeout SECS           per-request wall-clock budget (default 600);\n"
        "                           a hung server exits 3 (retryable)\n"
        "\n"
        "options (work):\n"
        "  --coordinator HOST:PORT  serve daemon to pull assignments from\n"
        "                           (default 127.0.0.1:9119)\n"
        "  --worker-id NAME         worker name in coordinator logs\n"
        "                           (default worker-<pid>)\n"
        "  --threads T              threads per assigned cell (default 1)\n"
        "  --max-idle N             exit after N consecutive idle polls\n"
        "                           (default 0 = keep polling until signalled)\n";
  return code;
}

struct Cli {
  int threads = 0;
  std::optional<std::uint64_t> seed;
  std::filesystem::path cache_dir;
  bool no_cache = false;
  std::uint64_t cache_max_bytes = 0;
  int max_measurements = 0;
  bool adaptive = false;
  std::optional<double> error_bound;
  std::string out_path;
  std::string csv_path;
  std::string listen = "127.0.0.1:9119";
  std::string server = "127.0.0.1:9119";
  std::string peer;
  int max_connections = 64;
  int max_inflight = 16;
  bool fetch_list = false;
  bool fetch_stats = false;
  int shards = 0;  ///< run: 0 = single-node path, N > 0 = sharded driver.
  int workers = 1;
  std::string coordinator = "127.0.0.1:9119";
  std::string worker_id;
  int max_idle = 0;
  int timeout_s = 600;
  std::vector<std::string> positional;
};

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<int> parse_int(std::string_view text) {
  int value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || value < 0) return std::nullopt;
  return value;
}

/// Parses everything after the command name. Returns false on a bad flag
/// (message already printed).
bool parse_cli(int argc, char** argv, int first, Cli& cli) {
  const auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "cloudrepro: " << argv[i] << " needs a value\n";
      return nullptr;
    }
    return argv[i + 1];
  };
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads") {
      const char* v = need(i);
      if (!v) return false;
      const auto n = parse_int(v);
      if (!n) {
        std::cerr << "cloudrepro: bad --threads \"" << v << "\"\n";
        return false;
      }
      cli.threads = *n;
      ++i;
    } else if (arg == "--seed") {
      const char* v = need(i);
      if (!v) return false;
      const auto s = parse_u64(v);
      if (!s) {
        std::cerr << "cloudrepro: bad --seed \"" << v << "\"\n";
        return false;
      }
      cli.seed = *s;
      ++i;
    } else if (arg == "--cache-dir") {
      const char* v = need(i);
      if (!v) return false;
      cli.cache_dir = v;
      ++i;
    } else if (arg == "--no-cache") {
      cli.no_cache = true;
    } else if (arg == "--cache-max-bytes") {
      const char* v = need(i);
      if (!v) return false;
      const auto n = parse_u64(v);
      if (!n) {
        std::cerr << "cloudrepro: bad --cache-max-bytes \"" << v << "\"\n";
        return false;
      }
      cli.cache_max_bytes = *n;
      ++i;
    } else if (arg == "--max-measurements") {
      const char* v = need(i);
      if (!v) return false;
      const auto n = parse_int(v);
      if (!n) {
        std::cerr << "cloudrepro: bad --max-measurements \"" << v << "\"\n";
        return false;
      }
      cli.max_measurements = *n;
      ++i;
    } else if (arg == "--adaptive") {
      cli.adaptive = true;
    } else if (arg == "--error-bound") {
      const char* v = need(i);
      if (!v) return false;
      char* end = nullptr;
      const double b = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(b > 0.0)) {
        std::cerr << "cloudrepro: bad --error-bound \"" << v << "\"\n";
        return false;
      }
      cli.error_bound = b;
      cli.adaptive = true;
      ++i;
    } else if (arg == "--out") {
      const char* v = need(i);
      if (!v) return false;
      cli.out_path = v;
      ++i;
    } else if (arg == "--csv") {
      const char* v = need(i);
      if (!v) return false;
      cli.csv_path = v;
      ++i;
    } else if (arg == "--listen") {
      const char* v = need(i);
      if (!v) return false;
      cli.listen = v;
      ++i;
    } else if (arg == "--server") {
      const char* v = need(i);
      if (!v) return false;
      cli.server = v;
      ++i;
    } else if (arg == "--peer") {
      const char* v = need(i);
      if (!v) return false;
      cli.peer = v;
      ++i;
    } else if (arg == "--max-connections") {
      const char* v = need(i);
      if (!v) return false;
      const auto n = parse_int(v);
      if (!n || *n == 0) {
        std::cerr << "cloudrepro: bad --max-connections \"" << v << "\"\n";
        return false;
      }
      cli.max_connections = *n;
      ++i;
    } else if (arg == "--max-inflight") {
      const char* v = need(i);
      if (!v) return false;
      const auto n = parse_int(v);
      if (!n || *n == 0) {
        std::cerr << "cloudrepro: bad --max-inflight \"" << v << "\"\n";
        return false;
      }
      cli.max_inflight = *n;
      ++i;
    } else if (arg == "--list") {
      cli.fetch_list = true;
    } else if (arg == "--stats") {
      cli.fetch_stats = true;
    } else if (arg == "--shards") {
      const char* v = need(i);
      if (!v) return false;
      const auto n = parse_int(v);
      if (!n || *n == 0) {
        std::cerr << "cloudrepro: bad --shards \"" << v << "\"\n";
        return false;
      }
      cli.shards = *n;
      ++i;
    } else if (arg == "--workers") {
      const char* v = need(i);
      if (!v) return false;
      const auto n = parse_int(v);
      if (!n || *n == 0) {
        std::cerr << "cloudrepro: bad --workers \"" << v << "\"\n";
        return false;
      }
      cli.workers = *n;
      ++i;
    } else if (arg == "--coordinator") {
      const char* v = need(i);
      if (!v) return false;
      cli.coordinator = v;
      ++i;
    } else if (arg == "--worker-id") {
      const char* v = need(i);
      if (!v) return false;
      cli.worker_id = v;
      ++i;
    } else if (arg == "--max-idle") {
      const char* v = need(i);
      if (!v) return false;
      const auto n = parse_int(v);
      if (!n) {
        std::cerr << "cloudrepro: bad --max-idle \"" << v << "\"\n";
        return false;
      }
      cli.max_idle = *n;
      ++i;
    } else if (arg == "--timeout") {
      const char* v = need(i);
      if (!v) return false;
      const auto n = parse_int(v);
      if (!n || *n == 0) {
        std::cerr << "cloudrepro: bad --timeout \"" << v << "\"\n";
        return false;
      }
      cli.timeout_s = *n;
      ++i;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout, 0);
      std::exit(0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "cloudrepro: unknown option \"" << arg << "\"\n";
      return false;
    } else {
      cli.positional.emplace_back(arg);
    }
  }
  return true;
}

std::filesystem::path cache_root(const Cli& cli) {
  if (!cli.cache_dir.empty()) return cli.cache_dir;
  if (const char* env = std::getenv("CLOUDREPRO_CACHE_DIR"); env && *env) {
    return env;
  }
  return ".cloudrepro-cache";
}

ResultStore make_store(const Cli& cli) {
  ResultStore::Options options;
  options.max_bytes = cli.cache_max_bytes;
  return ResultStore{cache_root(cli), nullptr, nullptr, options};
}

/// Resolves a scenario argument: catalog name, path to a spec JSON file
/// (anything ending in .json), or "-" for stdin.
ScenarioSpec resolve_scenario(const std::string& arg) {
  if (arg == "-") {
    std::ostringstream text;
    text << std::cin.rdbuf();
    return ScenarioSpec::parse(text.str());
  }
  if (arg.size() > 5 && arg.compare(arg.size() - 5, 5, ".json") == 0) {
    std::ifstream in{arg, std::ios::binary};
    if (!in) throw std::runtime_error{"cannot open scenario file \"" + arg + "\""};
    std::ostringstream text;
    text << in.rdbuf();
    return ScenarioSpec::parse(text.str());
  }
  return ScenarioRegistry::builtin().at(arg);
}

/// Applies `--adaptive` / `--error-bound` to a resolved spec. Mutating the
/// ConfirmSpec changes the content hash, so an adaptive run caches under its
/// own key and never collides with the fixed-repetition entry.
ScenarioSpec apply_overrides(ScenarioSpec spec, const Cli& cli) {
  if (cli.adaptive) {
    spec.confirm.enabled = true;
    spec.confirm.adaptive = true;
  }
  if (cli.error_bound) spec.confirm.error_bound = *cli.error_bound;
  return spec;
}

void emit(const std::string& out_path, const std::string& payload) {
  if (out_path.empty()) {
    std::cout << payload << "\n";
    return;
  }
  std::ofstream out{out_path, std::ios::binary | std::ios::trunc};
  if (!out) throw std::runtime_error{"cannot write \"" + out_path + "\""};
  out << payload << "\n";
}

/// Runs one scenario and streams its summary. Returns 0 (complete) or
/// 3 (interrupted, resumable).
int run_one(const ScenarioSpec& spec, const Cli& cli, ResultStore* store,
            std::ostream* summary_line_os) {
  RunOptions options;
  options.threads = cli.threads;
  options.seed = cli.seed;
  options.store = store;
  options.max_measurements = cli.max_measurements;
  options.need_values = !cli.csv_path.empty();
  options.cancel = &g_cancel;

  const std::uint64_t seed = cli.seed.value_or(spec.seed);
  std::cerr << "cloudrepro: " << spec.name << " hash=" << spec.content_hash()
            << " seed=" << seed
            << (cli.shards > 0 ? " shards=" + std::to_string(cli.shards) : "")
            << "\n";

  cloudrepro::scenario::ScenarioRunResult result;
  if (cli.shards > 0) {
    cloudrepro::shard::LocalShardOptions sharded;
    sharded.shards = static_cast<std::size_t>(cli.shards);
    sharded.worker_threads = cli.workers;
    sharded.store = store;
    sharded.seed = cli.seed;
    sharded.cancel = &g_cancel;
    result = cloudrepro::shard::run_scenario_sharded(spec, sharded);
  } else {
    result = cloudrepro::scenario::run_scenario(spec, options);
  }

  std::cerr << "cloudrepro: cache " << ResultStore::to_string(result.hit_state)
            << (store ? "" : " (disabled)") << ", executed "
            << result.executed_measurements << ", resumed "
            << result.resumed_measurements << " of " << result.total_measurements
            << " measurements\n";

  if (!cli.csv_path.empty()) {
    std::ofstream csv{cli.csv_path, std::ios::binary | std::ios::trunc};
    if (!csv) throw std::runtime_error{"cannot write \"" + cli.csv_path + "\""};
    result.campaign.write_csv(csv);
  }

  if (summary_line_os) {
    *summary_line_os << result.summary << "\n";
  } else {
    emit(cli.out_path, result.summary);
  }

  if (!result.complete) {
    if (g_signal != 0) {
      std::cerr << "cloudrepro: interrupted by "
                << (g_signal == SIGTERM ? "SIGTERM" : "SIGINT")
                << "; journal flushed, rerun the same command to resume\n";
    } else {
      std::cerr << "cloudrepro: interrupted by --max-measurements; rerun the "
                   "same command to resume\n";
    }
    return 3;
  }
  return 0;
}

int cmd_list() {
  const auto& registry = ScenarioRegistry::builtin();
  std::size_t width = 4;
  for (const auto& spec : registry.scenarios()) {
    width = std::max(width, spec.name.size());
  }
  std::cout << std::left << std::setw(static_cast<int>(width) + 2) << "NAME"
            << std::setw(7) << "CELLS" << std::setw(7) << "MEAS"
            << std::setw(12) << "PAPER" << "TITLE\n";
  for (const auto& spec : registry.scenarios()) {
    std::cout << std::left << std::setw(static_cast<int>(width) + 2) << spec.name
              << std::setw(7) << spec.cell_count() << std::setw(7)
              << spec.total_measurements() << std::setw(12) << spec.paper_ref
              << spec.title << "\n";
  }
  std::cout << "\nsuites:\n";
  for (const auto& [name, members] : registry.suites()) {
    std::cout << "  " << name << ":";
    for (const auto& member : members) std::cout << " " << member;
    std::cout << "\n";
  }
  return 0;
}

int cmd_describe(const Cli& cli) {
  if (cli.positional.size() != 1) {
    std::cerr << "cloudrepro: describe needs exactly one scenario\n";
    return 2;
  }
  const ScenarioSpec spec =
      apply_overrides(resolve_scenario(cli.positional.front()), cli);
  std::cerr << "cloudrepro: " << spec.name << " — " << spec.title << "\n"
            << "cloudrepro: hash=" << spec.content_hash()
            << " seed=" << spec.seed << "\n"
            << "cloudrepro: " << spec.workloads.size() << " workloads x "
            << spec.treatment_count() << " treatments x " << spec.repetitions
            << " repetitions = " << spec.total_measurements()
            << " measurements\n";
  emit(cli.out_path, spec.canonical_json());
  return 0;
}

int cmd_run(const Cli& cli) {
  if (cli.positional.size() != 1) {
    std::cerr << "cloudrepro: run needs exactly one scenario\n";
    return 2;
  }
  if (cli.shards > 0 && cli.no_cache) {
    std::cerr << "cloudrepro: --shards needs the result cache (drop "
                 "--no-cache): the merged journal lands in its entry\n";
    return 2;
  }
  if (cli.shards > 0 && !cli.csv_path.empty()) {
    std::cerr << "cloudrepro: --csv is not supported with --shards; rerun "
                 "without --shards (the cache entry is shared)\n";
    return 2;
  }
  const ScenarioSpec spec =
      apply_overrides(resolve_scenario(cli.positional.front()), cli);
  std::optional<ResultStore> store;
  if (!cli.no_cache) store.emplace(make_store(cli));
  return run_one(spec, cli, store ? &*store : nullptr, nullptr);
}

int cmd_suite(const Cli& cli) {
  if (cli.positional.size() != 1) {
    std::cerr << "cloudrepro: suite needs exactly one suite name\n";
    return 2;
  }
  const auto& registry = ScenarioRegistry::builtin();
  const auto& members = registry.suite(cli.positional.front());
  std::optional<ResultStore> store;
  if (!cli.no_cache) store.emplace(make_store(cli));

  std::vector<ScenarioSpec> specs;
  specs.reserve(members.size());
  for (const auto& member : members) {
    specs.push_back(apply_overrides(registry.at(member), cli));
  }

  // Summaries stream to the sink as each member's prefix completes — a
  // suite interrupted at member k still has k complete summary lines on
  // disk / in the pipe, and a long suite shows progress instead of
  // buffering everything for one final write. With --threads N the members
  // share one work-stealing pool (one thread budget for the whole suite),
  // but emission stays in member order, so the bytes are identical to the
  // serial reference: one canonical summary per line.
  std::ofstream out_file;
  if (!cli.out_path.empty()) {
    out_file.open(cli.out_path, std::ios::binary | std::ios::trunc);
    if (!out_file) {
      throw std::runtime_error{"cannot write \"" + cli.out_path + "\""};
    }
  }
  std::ostream& sink = cli.out_path.empty() ? std::cout : out_file;

  RunOptions options;
  options.threads = cli.threads;
  options.seed = cli.seed;
  options.store = store ? &*store : nullptr;
  options.max_measurements = cli.max_measurements;
  options.need_values = !cli.csv_path.empty();
  options.cancel = &g_cancel;

  int rc = 0;
  const auto report = [&](std::size_t i,
                          const cloudrepro::scenario::ScenarioRunResult& result) {
    const ScenarioSpec& spec = specs[i];
    std::cerr << "cloudrepro: " << spec.name << " hash=" << spec.content_hash()
              << " seed=" << cli.seed.value_or(spec.seed) << "\n";
    std::cerr << "cloudrepro: cache " << ResultStore::to_string(result.hit_state)
              << (store ? "" : " (disabled)") << ", executed "
              << result.executed_measurements << ", resumed "
              << result.resumed_measurements << " of "
              << result.total_measurements << " measurements\n";
    if (!cli.csv_path.empty()) {
      std::ofstream csv{cli.csv_path, std::ios::binary | std::ios::trunc};
      if (!csv) throw std::runtime_error{"cannot write \"" + cli.csv_path + "\""};
      result.campaign.write_csv(csv);
    }
    sink << result.summary << "\n" << std::flush;
    if (!result.complete) rc = 3;
  };

  cloudrepro::scenario::run_suite(specs, options, report);
  if (g_cancel.load(std::memory_order_relaxed)) {
    std::cerr << "cloudrepro: suite interrupted; rerun to resume from the "
                 "cache\n";
  }
  return rc;
}

int cmd_cache(const Cli& cli) {
  if (cli.positional.empty()) {
    std::cerr << "cloudrepro: cache needs a subcommand (stats|verify|clear|evict)\n";
    return 2;
  }
  ResultStore store = make_store(cli);
  const std::string& sub = cli.positional.front();
  if (sub == "stats") {
    const auto entries = store.entries();
    std::cerr << "cloudrepro: cache root " << store.root().string() << ", "
              << entries.size() << " entries\n";
    for (const auto& entry : entries) {
      std::cout << entry.key << " "
                << (entry.complete ? "complete" : "partial") << " "
                << entry.journal_measurements << " measurements " << entry.bytes
                << " bytes\n";
    }
    return 0;
  }
  if (sub == "verify") {
    const auto reports = store.verify();
    int rc = 0;
    for (const auto& report : reports) {
      std::cout << report.key << " " << (report.ok ? "ok" : "CORRUPT")
                << (report.note.empty() ? "" : " (" + report.note + ")")
                << "\n";
      if (!report.ok) rc = 1;
    }
    std::cerr << "cloudrepro: verified " << reports.size() << " entries\n";
    return rc;
  }
  if (sub == "clear") {
    const auto removed = store.clear();
    std::cerr << "cloudrepro: evicted " << removed << " entries\n";
    return 0;
  }
  if (sub == "evict") {
    if (cli.positional.size() != 2) {
      std::cerr << "cloudrepro: cache evict needs exactly one scenario\n";
      return 2;
    }
    const ScenarioSpec spec = resolve_scenario(cli.positional[1]);
    const auto removed = store.evict(spec, cli.seed.value_or(spec.seed));
    std::cerr << "cloudrepro: evicted " << removed << " entries\n";
    return 0;
  }
  std::cerr << "cloudrepro: unknown cache subcommand \"" << sub << "\"\n";
  return 2;
}

int cmd_serve(const Cli& cli) {
  namespace serve = cloudrepro::serve;
  if (!cli.positional.empty()) {
    std::cerr << "cloudrepro: serve takes no positional arguments\n";
    return 2;
  }
  if (cli.no_cache) {
    std::cerr << "cloudrepro: serve needs the result cache (drop --no-cache)\n";
    return 2;
  }
  const auto [host, port] = serve::parse_endpoint(cli.listen);

  cloudrepro::obs::MetricsRegistry metrics;
  ResultStore::Options store_options;
  store_options.max_bytes = cli.cache_max_bytes;
  ResultStore store{cache_root(cli), &metrics, nullptr, store_options};

  serve::ServeOptions options;
  options.max_connections = static_cast<std::size_t>(cli.max_connections);
  options.max_inflight = static_cast<std::size_t>(cli.max_inflight);
  options.campaign_threads = cli.threads;
  if (!cli.peer.empty()) {
    const auto [peer_host, peer_port] = serve::parse_endpoint(cli.peer);
    options.peer = [peer_host = peer_host, peer_port = peer_port]()
        -> std::unique_ptr<serve::Transport> {
      return serve::connect_tcp(peer_host, peer_port);
    };
  }

  serve::ServerCore core{store, metrics, options};
  serve::SocketServer socket_server{core, host, port};
  // The smoke scripts grep this exact line for the resolved ephemeral port.
  std::cerr << "cloudrepro: serving on " << host << ":" << socket_server.port()
            << " (cache " << store.root().string() << ")\n"
            << std::flush;
  socket_server.run(g_cancel);
  std::cerr << "cloudrepro: serve shut down cleanly\n";
  return 0;
}

int cmd_fetch(const Cli& cli) {
  namespace serve = cloudrepro::serve;
  const auto [host, port] = serve::parse_endpoint(cli.server);
  serve::FetchClient::Options client_options;
  client_options.timeout = std::chrono::seconds{cli.timeout_s};
  serve::FetchClient client{serve::connect_tcp(host, port), client_options};

  if (cli.fetch_list || cli.fetch_stats) {
    if (!cli.positional.empty()) {
      std::cerr << "cloudrepro: fetch --list/--stats takes no scenario\n";
      return 2;
    }
    const serve::Response response =
        cli.fetch_list ? client.list() : client.stats();
    if (!response.ok) {
      std::cerr << "cloudrepro: fetch failed: " << response.error_code << ": "
                << response.error_message << "\n";
      return 1;
    }
    emit(cli.out_path, response.body);
    return 0;
  }

  if (cli.positional.size() != 1) {
    std::cerr << "cloudrepro: fetch needs exactly one scenario "
                 "(or --list/--stats)\n";
    return 2;
  }
  const ScenarioSpec spec =
      apply_overrides(resolve_scenario(cli.positional.front()), cli);
  std::cerr << "cloudrepro: fetch " << spec.name << " hash="
            << spec.content_hash() << " seed=" << cli.seed.value_or(spec.seed)
            << " from " << host << ":" << port << "\n";
  const serve::Response response = client.get(spec, cli.seed);
  if (!response.ok) {
    std::cerr << "cloudrepro: fetch failed: " << response.error_code << ": "
              << response.error_message << "\n";
    // "busy" mirrors the interrupted/resumable contract: retry later.
    return response.error_code == "busy" ? 3 : 1;
  }
  std::cerr << "cloudrepro: served " << response.hit << "\n";
  // The summary bytes are the stored canonical document, so this stdout is
  // byte-identical to `cloudrepro run` of the same (scenario, seed).
  emit(cli.out_path, response.summary);
  return 0;
}

int cmd_work(const Cli& cli) {
  namespace serve = cloudrepro::serve;
  if (!cli.positional.empty()) {
    std::cerr << "cloudrepro: work takes no positional arguments\n";
    return 2;
  }
  const auto [host, port] = serve::parse_endpoint(cli.coordinator);

  serve::WorkerOptions options;
  options.name = cli.worker_id.empty()
                     ? "worker-" + std::to_string(::getpid())
                     : cli.worker_id;
  options.threads = std::max(1, cli.threads);
  options.max_idle_polls = cli.max_idle;
  options.cancel = &g_cancel;
  options.on_event = [](const std::string& line) {
    std::cerr << "cloudrepro: " << line << "\n" << std::flush;
  };

  // Outer loop: (re)connect and run the pull/push loop. Reconnecting after
  // transport loss keeps a worker useful across coordinator restarts; the
  // dial retries cover workers started before the coordinator is listening
  // (the CI ordering).
  int dials_left = 100;
  for (;;) {
    if (g_cancel.load(std::memory_order_relaxed)) return 3;
    std::unique_ptr<serve::SocketTransport> transport;
    try {
      transport = serve::connect_tcp(host, port);
    } catch (const std::exception& error) {
      if (--dials_left <= 0) {
        std::cerr << "cloudrepro: cannot reach coordinator " << host << ":"
                  << port << ": " << error.what() << "\n";
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    // The smoke scripts wait for this exact line before fetching.
    std::cerr << "cloudrepro: worker " << options.name << " connected to "
              << host << ":" << port << "\n"
              << std::flush;
    try {
      const serve::WorkerStats stats =
          serve::run_worker(std::move(transport), options);
      std::cerr << "cloudrepro: worker " << options.name << " done: "
                << stats.cells_completed << " cells completed, "
                << stats.cells_partial << " partial, " << stats.records_pushed
                << " records pushed\n";
      return g_cancel.load(std::memory_order_relaxed) ? 3 : 0;
    } catch (const std::exception& error) {
      if (g_cancel.load(std::memory_order_relaxed)) return 3;
      std::cerr << "cloudrepro: worker connection lost (" << error.what()
                << "); reconnecting\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string_view command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    return usage(std::cout, 0);
  }

  Cli cli;
  if (!parse_cli(argc, argv, 2, cli)) return 2;

  try {
    if (command == "list") return cmd_list();
    if (command == "describe") return cmd_describe(cli);
    if (command == "run") {
      install_signal_handlers();
      return cmd_run(cli);
    }
    if (command == "suite") {
      install_signal_handlers();
      return cmd_suite(cli);
    }
    if (command == "cache") return cmd_cache(cli);
    if (command == "serve") {
      install_signal_handlers();
      return cmd_serve(cli);
    }
    if (command == "fetch") return cmd_fetch(cli);
    if (command == "work") {
      install_signal_handlers();
      return cmd_work(cli);
    }
    std::cerr << "cloudrepro: unknown command \"" << command << "\"\n";
    return usage(std::cerr, 2);
  } catch (const cloudrepro::serve::FetchTimeout& error) {
    // Deadline, not failure: the server may still be computing. Exit 3
    // mirrors the interrupted/resumable contract — retry later.
    std::cerr << "cloudrepro: " << error.what() << "\n";
    return 3;
  } catch (const std::exception& error) {
    std::cerr << "cloudrepro: " << error.what() << "\n";
    return 1;
  }
}
