// Figure 8: Google Cloud latency for 10-second TCP streams on a 4-core
// instance. Paper: millisecond-scale RTTs with an upper limit around 10 ms;
// no throttling effect, but bandwidth and latency vary more from sample to
// sample than EC2's.

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/rtt.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

int main() {
  bench::header("Google Cloud latency, 10-s TCP streams (4-core)", "Figure 8");

  stats::Rng rng{bench::kBenchSeed};
  cloud::CloudProfile profile{
      cloud::find_instance(cloud::Provider::kGoogleCloud, "4-core")};

  measure::RttProbeOptions opt;  // 10-s stream, 128 KB writes.
  const auto result = measure::run_rtt_probe(profile, opt, rng);
  const auto& a = result.analysis;

  core::TablePrinter t{{"Metric", "Value"}};
  t.add_row({"packets", std::to_string(a.packet_count)});
  t.add_row({"median RTT [ms]", core::fmt(a.median_rtt_ms, 3)});
  t.add_row({"mean RTT [ms]", core::fmt(a.mean_rtt_ms, 3)});
  t.add_row({"p99 RTT [ms]", core::fmt(a.p99_rtt_ms, 3)});
  t.add_row({"max RTT [ms]", core::fmt(a.max_rtt_ms, 3)});
  t.add_row({"retransmission rate", core::fmt_pct(a.retransmission_rate)});
  t.add_row({"mean bandwidth [Gbps]", core::fmt(a.mean_bandwidth_gbps)});
  t.print(std::cout);

  const auto rtts = result.capture.rtts();
  std::cout << "\nRTT shape: " << bench::sparkline(rtts) << '\n';
  std::cout << "\nPaper reference: ms-scale latency (vs EC2's sub-ms), bulk of\n"
               "samples below ~10 ms, ~2% retransmissions at the default 128 KB\n"
               "write size (TSO-sized 64 KB packets pressuring NIC buffers).\n";
  return 0;
}
