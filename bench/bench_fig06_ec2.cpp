// Figure 6: Amazon EC2 bandwidth by access pattern (c5.xlarge pair, one
// week each), as an empirical CDF plus the coefficient-of-variation bars.
// Paper: the opposite of GCE — heavier streams achieve LESS performance:
// approximately 3x and 7x slowdowns between 10-30 / 5-30 and full-speed;
// achieved bandwidth varies between ~1 and ~10 Gbps.

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "stats/histogram.h"

using namespace cloudrepro;

int main() {
  bench::header("Amazon EC2 bandwidth by access pattern (c5.xlarge pair)",
                "Figure 6");

  stats::Rng rng{bench::kBenchSeed};
  std::vector<measure::Trace> traces;
  for (const auto& pattern : measure::canonical_patterns()) {
    measure::BandwidthProbeOptions probe;  // One week.
    traces.push_back(
        measure::run_bandwidth_probe(cloud::ec2_c5_xlarge(), pattern, probe, rng));
  }

  bench::section("Empirical CDF of achieved bandwidth [Gbps]");
  core::TablePrinter cdf{{"Bandwidth <=", "full-speed", "10-30", "5-30"}};
  std::vector<stats::Ecdf> ecdfs;
  for (const auto& tr : traces) ecdfs.emplace_back(tr.bandwidths());
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 10.5}) {
    cdf.add_row({core::fmt(x, 1), core::fmt(ecdfs[0](x)), core::fmt(ecdfs[1](x)),
                 core::fmt(ecdfs[2](x))});
  }
  cdf.print(std::cout);
  std::cout << '\n';

  bench::section("Medians and coefficient of variation (paper: ~3x / ~7x slowdowns)");
  core::TablePrinter t{{"Pattern", "Median [Gbps]", "vs full-speed", "CoV [%]"}};
  const double full_median = traces[0].bandwidth_summary().median;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto s = traces[i].bandwidth_summary();
    t.add_row({traces[i].pattern, core::fmt(s.median),
               core::fmt(s.median / full_median, 1) + "x",
               core::fmt(100.0 * s.coefficient_of_variation, 1)});
  }
  t.print(std::cout);

  std::cout << "\nFull-speed spends the week throttled at ~1 Gbps (empty token\n"
               "bucket); the intermittent patterns spend their rest periods\n"
               "refilling and so transmit mostly at the 10 Gbps rate.\n";
  return 0;
}
