// Figure 9: TCP retransmission analysis across all clouds and patterns.
// Left: per-cloud boxplots — EC2 and HPCCloud negligible, GCE common
// (~2% of segments). Right: GCE violin by access pattern. Counts are per
// 10-minute measurement window (see EXPERIMENTS.md on units).

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "stats/descriptive.h"
#include "stats/timeseries.h"

using namespace cloudrepro;

namespace {

/// Sums retransmissions into 10-minute windows (60 samples of 10 s).
std::vector<double> per_window_retrans(const measure::Trace& trace) {
  std::vector<double> windows;
  double acc = 0.0;
  int count = 0;
  for (const auto& s : trace.samples) {
    acc += s.retransmissions;
    if (++count == 60) {
      windows.push_back(acc);
      acc = 0.0;
      count = 0;
    }
  }
  return windows;
}

}  // namespace

int main() {
  bench::header("TCP retransmissions per 10-minute window", "Figure 9");

  stats::Rng rng{bench::kBenchSeed};
  measure::BandwidthProbeOptions probe;
  probe.duration_s = 2.0 * 24.0 * 3600.0;  // Two days per cell.

  const cloud::CloudProfile clouds[] = {cloud::ec2_c5_xlarge(), cloud::gce_8core(),
                                        cloud::hpccloud_8core()};

  bench::section("Per-cloud distribution, full-speed (paper: GCE >> EC2 ~ HPCCloud ~ 0)");
  core::TablePrinter t{{"Cloud", "p1 / p25 / p50 / p75 / p99 retrans (thousands)"}};
  std::vector<measure::Trace> gce_traces;
  for (const auto& profile : clouds) {
    const auto trace = measure::run_bandwidth_probe(profile, measure::full_speed(),
                                                    probe, rng);
    auto windows = per_window_retrans(trace);
    for (auto& w : windows) w /= 1000.0;
    t.add_row({cloud::to_string(profile.type().provider),
               bench::box_row(stats::box_stats(windows), 1)});
  }
  t.print(std::cout);
  std::cout << '\n';

  bench::section("Google Cloud by access pattern (the Figure 9 violin)");
  core::TablePrinter v{{"Pattern", "p1 / p25 / p50 / p75 / p99 retrans (thousands)",
                        "mean rate vs segments"}};
  for (const auto& pattern : measure::canonical_patterns()) {
    const auto trace =
        measure::run_bandwidth_probe(cloud::gce_8core(), pattern, probe, rng);
    auto windows = per_window_retrans(trace);
    for (auto& w : windows) w /= 1000.0;
    // Retransmission rate: retrans per segment (64 KB at the vNIC).
    double retrans = 0.0, gbit = 0.0;
    for (const auto& s : trace.samples) {
      retrans += s.retransmissions;
      gbit += s.transferred_gbit;
    }
    const double segments = gbit * 1e9 / 8.0 / 65536.0;
    v.add_row({pattern.name,
               windows.empty() ? std::string{"n/a"}
                               : bench::box_row(stats::box_stats(windows), 1),
               core::fmt_pct(retrans / segments)});
  }
  v.print(std::cout);
  std::cout << "\nPaper reference: roughly 2% of segments retransmitted on GCE\n"
               "at iperf's default 128 KB writes; near zero elsewhere.\n";
  return 0;
}
