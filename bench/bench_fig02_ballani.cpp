// Figure 2: bandwidth distributions for eight real-world clouds
// (box-and-whiskers at the 1st/25th/50th/75th/99th percentiles), as
// reconstructed from Ballani et al. and re-derived here by sampling.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cloud/ballani.h"
#include "core/report.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

int main() {
  bench::header("Bandwidth distributions for eight real-world clouds", "Figure 2");

  stats::Rng rng{bench::kBenchSeed};

  core::TablePrinter t{
      {"Cloud", "Published percentiles p1/p25/p50/p75/p99 [Mb/s]",
       "Resampled (100k draws)"}};
  for (const auto& d : cloud::ballani_distributions()) {
    std::vector<double> samples(100000);
    for (auto& s : samples) s = d.sample_mbps(rng);
    const auto b = stats::box_stats(samples);
    stats::BoxStats published{d.p1, d.p25, d.p50, d.p75, d.p99};
    t.add_row({d.label, bench::box_row(published, 0), bench::box_row(b, 0)});
  }
  t.print(std::cout);
  std::cout << "\nThe resampled percentiles match the published ones: the\n"
               "piecewise-linear inverse-CDF reconstruction is faithful, so the\n"
               "Figure 3 emulation replays exactly these distributions.\n";
  return 0;
}
