// Ablation: the statistical packet path vs a full TCP congestion-control
// simulation. The figure benches use the statistical model (constant-time
// per segment); this bench validates it against an event-driven TCP with
// slow start, AIMD, and fast recovery over the same vNIC bottlenecks, on
// the scenarios that matter for the paper: the three clouds' steady states
// and the EC2 throttle transition.

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "simnet/packet_path.h"
#include "simnet/tcp_stream.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

namespace {

struct ModelComparison {
  double statistical_gbps = 0.0;
  double tcp_gbps = 0.0;
  double statistical_rtt_ms = 0.0;
  double tcp_rtt_ms = 0.0;
};

ModelComparison compare(const cloud::VmNetwork& vm, double write_bytes,
                        double duration_s, stats::Rng& rng) {
  ModelComparison cmp;
  simnet::PacketPathConfig cfg;
  cfg.duration_s = duration_s;
  cfg.write_bytes = write_bytes;

  {
    auto qos = vm.egress->clone();
    const auto r = simnet::run_packet_stream(*qos, vm.vnic, cfg, rng);
    cmp.statistical_gbps = stats::mean(r.bandwidth_gbps);
    cmp.statistical_rtt_ms = stats::median(r.rtts()) * 1e3;
  }
  {
    auto qos = vm.egress->clone();
    const auto r = simnet::run_tcp_stream(*qos, vm.vnic, simnet::TcpConfig{}, cfg, rng);
    cmp.tcp_gbps = r.mean_goodput_gbps();
    std::vector<double> rtts;
    for (const auto& p : r.packets) {
      if (!p.retransmitted) rtts.push_back(p.rtt_s);
    }
    cmp.tcp_rtt_ms = rtts.empty() ? 0.0 : stats::median(rtts) * 1e3;
  }
  return cmp;
}

}  // namespace

int main() {
  bench::header("Ablation: statistical packet model vs full TCP simulation",
                "DESIGN.md section 5 (model-fidelity check)");

  stats::Rng rng{bench::kBenchSeed};
  core::TablePrinter t{{"Scenario", "Stat. model [Gbps]", "TCP sim [Gbps]",
                        "Stat. RTT [ms]", "TCP RTT [ms]"}};

  {
    auto vm = cloud::ec2_c5_xlarge().create_vm(rng);
    const auto cmp = compare(vm, 9000.0, 5.0, rng);
    t.add_row({"EC2 fresh (10 Gbps, 9K writes)", core::fmt(cmp.statistical_gbps),
               core::fmt(cmp.tcp_gbps), core::fmt(cmp.statistical_rtt_ms, 3),
               core::fmt(cmp.tcp_rtt_ms, 3)});
  }
  {
    auto vm = cloud::ec2_c5_xlarge().create_vm(rng);
    vm.egress->advance(1000.0, 10.0);  // Deplete the bucket.
    const auto cmp = compare(vm, 9000.0, 5.0, rng);
    t.add_row({"EC2 throttled (1 Gbps)", core::fmt(cmp.statistical_gbps),
               core::fmt(cmp.tcp_gbps), core::fmt(cmp.statistical_rtt_ms, 2),
               core::fmt(cmp.tcp_rtt_ms, 2)});
  }
  {
    auto vm = cloud::gce_8core().create_vm(rng);
    const auto cmp = compare(vm, 128.0 * 1024.0, 5.0, rng);
    t.add_row({"GCE 8-core (128K writes, lossy)", core::fmt(cmp.statistical_gbps),
               core::fmt(cmp.tcp_gbps), core::fmt(cmp.statistical_rtt_ms, 2),
               core::fmt(cmp.tcp_rtt_ms, 2)});
  }
  {
    auto vm = cloud::hpccloud_8core().create_vm(rng);
    const auto cmp = compare(vm, 9000.0, 5.0, rng);
    t.add_row({"HPCCloud 8-core", core::fmt(cmp.statistical_gbps),
               core::fmt(cmp.tcp_gbps), core::fmt(cmp.statistical_rtt_ms, 3),
               core::fmt(cmp.tcp_rtt_ms, 3)});
  }
  t.print(std::cout);

  std::cout << "\nReadings:\n"
               " * On the loss-free paths (EC2, HPCCloud) and in the throttled\n"
               "   regime the two models agree on bandwidth to within a few\n"
               "   percent; the statistical model reports *device-queue*\n"
               "   latency (what wireshark sees at the vNIC) while the TCP\n"
               "   simulation reports end-to-end sender RTT including\n"
               "   bufferbloat, so its RTTs run higher.\n"
               " * The GCE row is an honest divergence: single-flow Reno under\n"
               "   uniform 2% random loss obeys the Mathis bound (~2.7 Gbps\n"
               "   here), yet the paper MEASURED ~15 Gbps alongside ~2%\n"
               "   retransmissions. Real GCE sustains this because losses are\n"
               "   bursty (buffer-pressure-correlated, amortized by SACK-style\n"
               "   recovery) and offloads hide them from the control loop —\n"
               "   which is why the figure-generating path models the\n"
               "   *measured* throughput/loss jointly instead of deriving one\n"
               "   from the other through Reno.\n";
  return 0;
}
