// Figure 3: how credible are experiments with few repetitions?
// Emulates the eight Ballani clouds (A-H) on a 16-machine Spark cluster and
// compares 3- and 10-run estimates against the 50-run "gold standard":
//  (a) medians for HiBench K-Means, bandwidth resampled every 5 s;
//  (b) 90th percentiles for TPC-DS Q68, bandwidth resampled every 50 s.
// Paper: the 3-run median falls outside the gold CI for 6/8 clouds and the
// 10-run median for 3/8; tail estimates are even harder.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/ballani.h"
#include "core/report.h"
#include "simnet/qos.h"
#include "simnet/units.h"
#include "stats/ci.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

namespace {

std::vector<double> run_on_cloud(const cloud::BandwidthDistribution& dist,
                                 const bigdata::WorkloadProfile& workload,
                                 double resample_s, int repetitions,
                                 stats::Rng& rng) {
  bigdata::SparkEngine engine;
  std::vector<double> runtimes;
  runtimes.reserve(static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep) {
    auto sampler = [&dist](stats::Rng& r) {
      return simnet::mbps_to_gbps(dist.sample_mbps(r));
    };
    simnet::StochasticQos proto(sampler, resample_s, rng.split());
    auto cluster = bigdata::Cluster::uniform(16, 16, proto, 1.0);
    runtimes.push_back(engine.run(workload, cluster, rng).runtime_s);
  }
  return runtimes;
}

void analyze(const std::string& title, const bigdata::WorkloadProfile& workload,
             double resample_s, double quantile, stats::Rng& rng) {
  bench::section(title);
  core::TablePrinter t{{"Cloud", "Gold estimate [s] (50 runs, 95% CI)",
                        "3-run est.", "3-run ok?", "10-run est.", "10-run ok?"}};
  int bad3 = 0, bad10 = 0;
  for (const auto& dist : cloud::ballani_distributions()) {
    const auto runtimes = run_on_cloud(dist, workload, resample_s, 50, rng);
    const auto gold = stats::quantile_ci(runtimes, quantile);
    const std::span<const double> all{runtimes};
    const double est3 = stats::quantile(all.subspan(0, 3), quantile);
    const double est10 = stats::quantile(all.subspan(0, 10), quantile);
    const bool ok3 = gold.contains(est3);
    const bool ok10 = gold.contains(est10);
    bad3 += ok3 ? 0 : 1;
    bad10 += ok10 ? 0 : 1;
    t.add_row({dist.label, core::fmt_ci(gold, 1), core::fmt(est3, 1),
               ok3 ? "yes" : "NO (x)", core::fmt(est10, 1), ok10 ? "yes" : "NO (x)"});
  }
  t.print(std::cout);
  std::cout << "\nEstimates outside the gold-standard 95% CI: " << bad3
            << "/8 clouds with 3 runs, " << bad10 << "/8 with 10 runs.\n\n";
}

}  // namespace

int main() {
  bench::header("Few-repetition estimates vs the 50-run gold standard",
                "Figure 3 (a: K-Means medians, b: TPC-DS Q68 90th percentiles)");
  std::cout << "Paper reference points: (a) 3-run medians miss for 6/8 clouds,\n"
               "10-run for 3/8; (b) tail estimates are even less robust.\n\n";

  stats::Rng rng{bench::kBenchSeed};
  analyze("(a) Medians for HiBench K-Means, 5-s bandwidth resampling",
          bigdata::hibench_kmeans(), 5.0, 0.5, rng);
  analyze("(b) 90th percentiles for TPC-DS Q68, 50-s bandwidth resampling",
          bigdata::tpcds_query(68), 50.0, 0.9, rng);

  std::cout << "Note: with 50 runs the distribution-free CI for the 90th\n"
               "percentile barely exists (it needs >= 35 samples at 95%\n"
               "confidence), which is the paper's point about tail estimates.\n";
  return 0;
}
