// Figure 4: variable network bandwidth in HPCCloud — a week of continuous
// (full-speed) transfer between an 8-core VM pair, 10-second samples, plus
// the IQR box with 1st/99th-percentile whiskers.
// Paper: bandwidth ranges from 7.7 to 10.4 Gbps with significant
// sample-to-sample variability (up to ~33%).

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "stats/descriptive.h"
#include "stats/timeseries.h"

using namespace cloudrepro;

int main() {
  bench::header("HPCCloud bandwidth variability (8-core pair)", "Figure 4");

  stats::Rng rng{bench::kBenchSeed};
  measure::BandwidthProbeOptions probe;  // Defaults: one week, 10-s samples.
  const auto trace = measure::run_bandwidth_probe(cloud::hpccloud_8core(),
                                                  measure::full_speed(), probe, rng);
  const auto bw = trace.bandwidths();
  const auto s = trace.bandwidth_summary();
  const auto box = trace.bandwidth_box();

  std::cout << "Samples: " << bw.size() << " (one week at 10-s resolution)\n\n";
  bench::section("Statistical distribution (paper: ~7.7 to ~10.4 Gbps)");
  core::TablePrinter t{{"Metric", "Value [Gbps]"}};
  t.add_row({"min", core::fmt(s.min)});
  t.add_row({"p1 (whisker)", core::fmt(box.p1)});
  t.add_row({"p25 (box)", core::fmt(box.p25)});
  t.add_row({"median", core::fmt(box.p50)});
  t.add_row({"p75 (box)", core::fmt(box.p75)});
  t.add_row({"p99 (whisker)", core::fmt(box.p99)});
  t.add_row({"max", core::fmt(s.max)});
  t.print(std::cout);

  std::cout << "\nMax sample-to-sample change: "
            << core::fmt_pct(stats::max_sample_to_sample_variability(bw))
            << " (paper: up to 33%)\n";
  std::cout << "CoV: " << core::fmt_pct(s.coefficient_of_variation) << "\n\n";

  std::vector<double> first_day(bw.begin(), bw.begin() + 8640);
  std::cout << "Shape (first day): " << bench::sparkline(first_day) << '\n';
  return 0;
}
