// Ablation: F5.1's positive advice — "running on multiple clouds can be a
// good way to perform sensitivity analysis: by running the same system with
// the same input data and same parameters on multiple clouds, experimenters
// can reveal how sensitive the results are to the choices made by each
// provider." Runs the same K-Means job on all three clouds and compares the
// full runtime distributions (Kolmogorov-Smirnov), not just medians.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"

using namespace cloudrepro;

int main() {
  bench::header("Cross-cloud sensitivity analysis of one workload",
                "Guideline F5.1 (same system + same inputs across clouds)");

  stats::Rng rng{bench::kBenchSeed};
  bigdata::EngineOptions opt;
  opt.machine_noise_cv = 0.02;
  bigdata::SparkEngine engine{opt};

  // A shuffle-dominated job: provider network choices dominate its
  // runtime, which is exactly what a sensitivity analysis should expose.
  bigdata::WorkloadProfile workload;
  workload.name = "shuffle-heavy";
  workload.suite = "sensitivity";
  for (int s = 0; s < 3; ++s) {
    workload.stages.push_back({"exchange-" + std::to_string(s), 32, 4.0, 0.10, 150.0});
  }

  const struct {
    const char* name;
    cloud::CloudProfile profile;
  } clouds[] = {{"Amazon EC2 c5.xlarge", cloud::ec2_c5_xlarge()},
                {"Google Cloud 8-core", cloud::gce_8core()},
                {"HPCCloud 8-core", cloud::hpccloud_8core()}};

  std::vector<std::vector<double>> runtimes(3);
  for (int c = 0; c < 3; ++c) {
    for (int rep = 0; rep < 30; ++rep) {
      auto cluster = bigdata::Cluster::from_cloud(12, 16, clouds[c].profile, rng);
      runtimes[c].push_back(engine.run(workload, cluster, rng).runtime_s);
    }
  }

  bench::section("Shuffle-heavy job runtime distributions (30 fresh-cluster runs each)");
  core::TablePrinter t{{"Cloud", "p1 / p25 / p50 / p75 / p99 [s]", "CoV"}};
  for (int c = 0; c < 3; ++c) {
    t.add_row({clouds[c].name, bench::box_row(stats::box_stats(runtimes[c]), 0),
               core::fmt_pct(stats::coefficient_of_variation(runtimes[c]))});
  }
  t.print(std::cout);
  std::cout << '\n';

  bench::section("Pairwise distribution comparison (two-sample KS)");
  core::TablePrinter k{{"Pair", "KS statistic", "p-value", "Same distribution?"}};
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      const auto r = stats::kolmogorov_smirnov(runtimes[a], runtimes[b]);
      k.add_row({std::string{clouds[a].name} + " vs " + clouds[b].name,
                 core::fmt(r.statistic, 3), core::fmt(r.p_value, 4),
                 r.reject() ? "NO — provider-sensitive" : "compatible"});
    }
  }
  k.print(std::cout);

  std::cout << "\nIdentical system, identical inputs, three providers — three\n"
               "distinguishable runtime distributions. Numbers measured on one\n"
               "cloud do not transfer to another (F5.1); what transfers is the\n"
               "*sensitivity profile* this table documents.\n";
  return 0;
}
