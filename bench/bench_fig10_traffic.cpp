// Figure 10: total data transferred per experiment over the week.
// Paper: on Google Cloud, full-speed moves orders of magnitude more than
// the intermittent patterns; on EC2 all three move roughly the same total —
// the token bucket equalizes them, which is how the paper corroborates the
// token-bucket hypothesis.

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/iperf.h"
#include "measure/patterns.h"

using namespace cloudrepro;

int main() {
  bench::header("Total traffic per experiment (one week)", "Figure 10");

  stats::Rng rng{bench::kBenchSeed};

  const struct {
    const char* name;
    cloud::CloudProfile profile;
  } clouds[] = {{"Amazon EC2 (c5.xlarge)", cloud::ec2_c5_xlarge()},
                {"Google Cloud (8-core)", cloud::gce_8core()}};

  for (const auto& c : clouds) {
    bench::section(c.name);
    core::TablePrinter t{{"Pattern", "Total traffic [TB]", "Mean rate [Gbps]"}};
    double full_tb = 0.0, t530_tb = 0.0;
    for (const auto& pattern : measure::canonical_patterns()) {
      measure::BandwidthProbeOptions probe;  // One week.
      const auto trace = measure::run_bandwidth_probe(c.profile, pattern, probe, rng);
      const double tb = trace.cumulative_terabytes().back();
      if (pattern.name == "full-speed") full_tb = tb;
      if (pattern.name == "5-30") t530_tb = tb;
      t.add_row({pattern.name, core::fmt(tb, 1),
                 core::fmt(trace.total_gbit() / (7.0 * 24.0 * 3600.0))});
    }
    t.print(std::cout);
    std::cout << "full-speed : 5-30 traffic ratio = " << core::fmt(full_tb / t530_tb, 1)
              << "x\n\n";
  }

  std::cout << "Paper reference: GCE full-speed moved ~1000 TB vs tens for the\n"
               "intermittent patterns (~8x+ ratio); EC2's three experiments all\n"
               "moved roughly equal totals (~100 TB, ratio near 1) because the\n"
               "token bucket caps long-run throughput at the replenish rate.\n";
  return 0;
}
