// Figure 15: link capacity allocated when running Terasort on a token
// bucket, for initial budgets {5000, 1000, 100, 10} Gbit — five consecutive
// runs per budget, showing the node's achieved rate and the draining budget.
// Paper: strong correlation between small budgets and network variability.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "simnet/qos.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

int main() {
  bench::header("Terasort network profile vs initial token budget", "Figure 15");

  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};

  for (const double budget : {5000.0, 1000.0, 100.0, 10.0}) {
    bench::section("initial budget = " + core::fmt(budget, 0) + " Gbit");

    stats::Rng rng{bench::kBenchSeed};
    auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
    cluster.set_token_budgets(budget);

    bigdata::EngineOptions opt;
    opt.timeline_interval_s = 5.0;
    bigdata::SparkEngine engine{opt};

    // Five consecutive runs on the same cluster (state carries over).
    std::vector<double> t_axis, rate, budget_series;
    std::vector<double> runtimes;
    double t_offset = 0.0;
    for (int run = 0; run < 5; ++run) {
      const auto r = engine.run(bigdata::hibench_terasort(), cluster, rng);
      runtimes.push_back(r.runtime_s);
      for (const auto& p : r.timelines[0]) {
        t_axis.push_back(t_offset + p.t);
        rate.push_back(p.egress_gbps);
        budget_series.push_back(p.budget_gbit);
      }
      t_offset += r.runtime_s;
    }

    std::cout << "Run times [s]: ";
    for (const double rt : runtimes) std::cout << core::fmt(rt, 0) << ' ';
    std::cout << "\nLink rate shape    : " << bench::sparkline(rate) << '\n';
    std::cout << "Budget shape       : " << bench::sparkline(budget_series) << '\n';

    const auto busy_rates = [&] {
      std::vector<double> out;
      for (const double r : rate) {
        if (r > 0.05) out.push_back(r);
      }
      return out;
    }();
    std::cout << "Transfer-time rate p1/p25/p50/p75/p99 [Gbps]: "
              << bench::box_row(stats::box_stats(busy_rates), 1) << '\n';
    std::cout << "Run-to-run runtime CoV: "
              << core::fmt_pct(stats::coefficient_of_variation(runtimes)) << "\n\n";
  }

  std::cout << "Paper reference: budgets {5000, 1000} keep the link at 10 Gbps\n"
               "throughout; budgets {100, 10} collapse to ~1 Gbps with brief\n"
               "10 Gbps spikes after idle gaps — and much more run-to-run\n"
               "variability.\n";
  return 0;
}
