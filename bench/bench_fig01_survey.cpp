// Figure 1: state-of-practice in big data articles with cloud experiments.
//  (a) aspects reported about experiments (not mutually exclusive);
//  (b) number of repetitions for well-reported studies.
// Includes the dual-review Cohen's Kappa validation from Section 2
// (paper: 0.95 / 0.81 / 0.85 — all "almost perfect").

#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "stats/kappa.h"
#include "survey/corpus.h"
#include "survey/review.h"

using namespace cloudrepro;

int main() {
  bench::header("Survey reporting quality", "Figure 1 (a, b) + Section 2 Kappa scores");

  stats::Rng rng{bench::kBenchSeed};
  const auto corpus = survey::generate_corpus({}, rng);
  const auto selected =
      survey::filter_cloud_experiments(survey::filter_by_keywords(corpus));

  // Two reviewers with a small disagreement rate, as in the paper.
  const auto reviewer_a = survey::review_articles(selected, 0.02, rng);
  const auto reviewer_b = survey::review_articles(selected, 0.02, rng);
  const auto agreement = survey::agreement(reviewer_a, reviewer_b);
  const auto consensus = survey::favorable_consensus(reviewer_a, reviewer_b);
  const auto findings = survey::summarize_survey(selected, consensus);

  bench::section("Inter-reviewer agreement (paper: kappa 0.95 / 0.81 / 0.85)");
  core::TablePrinter kappa_table{{"Category", "Cohen's Kappa", "Interpretation"}};
  const auto interpret = [](double k) {
    return stats::to_string(stats::interpret_kappa(k));
  };
  kappa_table.add_row({"Reporting average or median",
                       core::fmt(agreement.kappa_central_tendency),
                       interpret(agreement.kappa_central_tendency)});
  kappa_table.add_row({"Reporting variability", core::fmt(agreement.kappa_variability),
                       interpret(agreement.kappa_variability)});
  kappa_table.add_row({"No or poor specification",
                       core::fmt(agreement.kappa_underspecified),
                       interpret(agreement.kappa_underspecified)});
  kappa_table.print(std::cout);
  std::cout << '\n';

  bench::section("Figure 1a: aspects reported (paper: ~55% avg/median, ~20% variability, >60% under-specified)");
  core::TablePrinter t{{"Aspect", "% of articles"}};
  t.add_row({"Reporting average or median",
             core::fmt(findings.pct_reporting_central_tendency, 1)});
  t.add_row({"Reporting variability", core::fmt(findings.pct_reporting_variability, 1)});
  t.add_row({"No or poor specification", core::fmt(findings.pct_underspecified, 1)});
  t.print(std::cout);
  std::cout << "\nOf the articles reporting averages/medians, only "
            << core::fmt(findings.pct_variability_given_central, 1)
            << "% also report variance or confidence (paper: 37%).\n\n";

  bench::section("Figure 1b: repetitions for well-reported studies (paper: mass at 3/5/10)");
  core::TablePrinter reps{{"No. of repetitions", "% of articles"}};
  for (const auto& [n, pct] : findings.repetition_pct) {
    reps.add_row({std::to_string(n), core::fmt(pct, 1)});
  }
  reps.print(std::cout);
  std::cout << '\n'
            << core::fmt(findings.pct_properly_specified_le15_reps, 1)
            << "% of properly specified studies use no more than 15 repetitions "
               "(paper: 76%).\n";
  return 0;
}
