// Figure 19: median estimates, 95% non-parametric CIs, and 10% error bounds
// for TPC-DS queries across a descending token-budget schedule
// {5000, 2500, 1000, 100, 10} Gbit x 10 repetitions each (cumulative 50
// measurements), emulating the effect of previous experiments on subsequent
// ones. Bottom: the share of queries whose median estimates go bad.
// Paper: Q82 is budget-agnostic (CI tightens); Q65 slows as the budget
// depletes and its CI *widens* — more repetitions make the estimate worse;
// ~80% of queries behave like Q65.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/confirm.h"
#include "core/report.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "simnet/qos.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

namespace {

const double kBudgetSchedule[] = {5000.0, 2500.0, 1000.0, 100.0, 10.0};

std::vector<double> run_schedule(const bigdata::WorkloadProfile& query,
                                 stats::Rng& rng) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  bigdata::EngineOptions opt;
  opt.partition_skew = 0.5;
  bigdata::SparkEngine engine{opt};

  std::vector<double> runtimes;
  for (const double budget : kBudgetSchedule) {
    for (int rep = 0; rep < 10; ++rep) {
      // Fresh machines and flushed caches per repetition; only the budget
      // carries the "previous experiments" effect, exactly as in the paper.
      auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
      cluster.set_token_budgets(budget);
      runtimes.push_back(engine.run(query, cluster, rng).runtime_s);
    }
  }
  return runtimes;
}

void detail(const char* name, const std::vector<double>& runtimes) {
  cloudrepro::bench::section(name);
  core::ConfirmOptions opt;
  opt.error_bound = 0.10;  // The paper's 10% bound for this figure.
  const auto analysis = core::confirm_analysis(runtimes, opt);

  core::TablePrinter t{{"Cumulative runs", "Budget phase", "Median [s]", "95% CI",
                        "CI width"}};
  for (std::size_t n : {10u, 20u, 30u, 40u, 50u}) {
    const auto& p = analysis.points[n - 1];
    stats::ConfidenceInterval ci;
    ci.estimate = p.estimate;
    ci.lower = p.ci_lower;
    ci.upper = p.ci_upper;
    ci.valid = p.ci_valid;
    t.add_row({std::to_string(n),
               core::fmt(kBudgetSchedule[n / 10 - 1], 0) + " Gbit",
               core::fmt(p.estimate, 1), core::fmt_ci(ci, 1),
               core::fmt(p.ci_upper - p.ci_lower, 1)});
  }
  t.print(std::cout);
  std::cout << "CI widened with more repetitions: "
            << (analysis.ci_widened ? "YES (non-i.i.d. — the Figure 19 signature)"
                                    : "no (i.i.d.-compatible)")
            << "\n\n";
}

#if CLOUDREPRO_OBS
/// The same depletion story, but read off the simulator's event trace
/// instead of engine-level results: every token-bucket high->low transition
/// is a `bucket_depleted` instant stamped with simulated time, so the
/// depletion timeline of each budget phase falls out of the trace directly.
void traced_depletion_timeline() {
  cloudrepro::bench::section(
      "Trace-derived depletion timeline (TPC-DS Q65, from bucket_depleted events)");
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  const auto query = bigdata::tpcds_query(65);
  // Separate stream: this section must not perturb the figures above.
  stats::Rng rng{cloudrepro::bench::kBenchSeed ^ 0xf19ULL};

  core::TablePrinter t{{"Budget phase", "Runs depleting", "First depletion [s]",
                        "Depletions/run"}};
  for (const double budget : kBudgetSchedule) {
    obs::Tracer tracer;
    bigdata::EngineOptions opt;
    opt.partition_skew = 0.5;
    opt.tracer = &tracer;
    bigdata::SparkEngine engine{opt};

    std::vector<double> first_depletion;
    std::size_t total_depletions = 0;
    for (int rep = 0; rep < 10; ++rep) {
      tracer.clear();
      auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
      cluster.set_token_budgets(budget);
      engine.run(query, cluster, rng);
      const auto depletions = tracer.events_named("bucket_depleted");
      total_depletions += depletions.size();
      if (!depletions.empty()) first_depletion.push_back(depletions.front().ts_s);
    }
    t.add_row({core::fmt(budget, 0) + " Gbit",
               std::to_string(first_depletion.size()) + "/10",
               first_depletion.empty() ? std::string{"-"}
                                       : core::fmt(stats::median(first_depletion), 1),
               core::fmt(static_cast<double>(total_depletions) / 10.0, 1)});
  }
  t.print(std::cout);
  std::cout << "Small budgets deplete within seconds of the first shuffle; the\n"
               "5000 Gbit phase never transitions. The timeline above is computed\n"
               "from trace events alone — the observability layer sees the same\n"
               "hidden state the runtime statistics only show indirectly.\n\n";
}
#endif

}  // namespace

int main() {
  cloudrepro::bench::header(
      "Median estimates under a depleting token-budget schedule", "Figure 19");

  stats::Rng rng{cloudrepro::bench::kBenchSeed};

  detail("TPC-DS Query 82 (budget-agnostic)", run_schedule(bigdata::tpcds_query(82), rng));
  detail("TPC-DS Query 65 (budget-dependent)", run_schedule(bigdata::tpcds_query(65), rng));

#if CLOUDREPRO_OBS
  traced_depletion_timeline();
#else
  std::cout << "(trace-derived depletion timeline omitted: built with "
               "CLOUDREPRO_OBS=OFF)\n\n";
#endif

  cloudrepro::bench::section("All 21 queries: how many produce poor median estimates?");
  int poor = 0;
  core::TablePrinter t{{"Query", "median(first 10) [s]", "median(all 50) [s]",
                        "shift", "CI widened?"}};
  for (const auto& query : bigdata::tpcds_suite()) {
    const auto runtimes = run_schedule(query, rng);
    const double early =
        stats::median(std::span<const double>{runtimes}.subspan(0, 10));
    const double all = stats::median(runtimes);
    const double shift = std::abs(all - early) / early;
    const auto analysis = core::confirm_analysis(runtimes);
    const bool bad = shift > 0.10 || analysis.ci_widened;
    poor += bad ? 1 : 0;
    t.add_row({query.name, core::fmt(early, 1), core::fmt(all, 1),
               core::fmt_pct(shift), analysis.ci_widened ? "yes" : "no"});
  }
  t.print(std::cout);
  std::cout << '\n' << poor << "/21 queries ("
            << core::fmt(100.0 * poor / 21.0, 0)
            << "%) produce poor median estimates once the budget depletes\n"
               "(paper: ~80%). More repetitions do NOT imply better estimates\n"
               "when hidden state couples the runs — reset to known conditions.\n";
  return 0;
}
