// Figure 12: measured latency and bandwidth as functions of the
// application's write() size, for EC2 (c5.xlarge) and GCE (4-core,
// advertised 8 Gbps).
// Paper: EC2 "packets" cap at the 9 KB jumbo MTU and latency stays flat
// sub-millisecond; on GCE, TSO lets a single vNIC "packet" reach 64 KB, so
// large writes push perceived RTT toward ~10 ms and generate hundreds of
// thousands of retransmissions, while 9 KB writes see ~2.3 ms and near-zero
// retransmission.

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/write_sweep.h"

using namespace cloudrepro;

namespace {

void sweep(const char* title, const cloud::CloudProfile& profile, stats::Rng& rng) {
  cloudrepro::bench::section(title);
  measure::WriteSweepOptions opt;
  opt.stream_duration_s = 3.0;
  const auto points = measure::run_write_sweep(profile, opt, rng);

  core::TablePrinter t{{"write() [B]", "vNIC packet [B]", "mean RTT [ms]",
                        "p99 RTT [ms]", "Bandwidth [Gbps]", "Retrans (per stream)",
                        "Retrans rate"}};
  for (const auto& p : points) {
    t.add_row({core::fmt(p.write_bytes, 0), core::fmt(p.segment_bytes, 0),
               core::fmt(p.mean_rtt_ms, 3), core::fmt(p.p99_rtt_ms, 2),
               core::fmt(p.bandwidth_gbps), core::fmt(p.retransmissions, 0),
               core::fmt_pct(p.retransmission_rate)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  cloudrepro::bench::header("Latency and bandwidth vs write() size", "Figure 12");

  stats::Rng rng{cloudrepro::bench::kBenchSeed};
  sweep("Amazon EC2, c5.xlarge (jumbo 9000-byte MTU, no TSO)",
        cloud::ec2_c5_xlarge(), rng);
  sweep("Google Cloud, 4-core / 8 Gbps (1500-byte MTU + TSO to 64 KB)",
        cloud::CloudProfile{
            cloud::find_instance(cloud::Provider::kGoogleCloud, "4-core")},
        rng);

  std::cout << "Observed behaviour (and thus repeatability, and the ability to\n"
               "generalize results between clouds) is highly application\n"
               "dependent — the write() size, an application detail, changes\n"
               "latency by 4x and retransmissions by orders of magnitude (F5.1).\n";
  return 0;
}
