// Figure 13: CONFIRM analysis for K-Means on Google Cloud and TPC-DS Q65 on
// HPCCloud — median estimates, 95% non-parametric CIs, and 1% error bounds
// as repetitions accumulate.
// Paper: it can take 70 repetitions or more to achieve 95% CIs within 1% of
// the measured median — far beyond the 3-10 repetitions common in the
// literature (Figure 1b).

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/confirm.h"
#include "core/report.h"
#include "runtime/thread_pool.h"

using namespace cloudrepro;

namespace {

void confirm_for(const char* title, const bigdata::WorkloadProfile& workload,
                 const cloud::CloudProfile& profile, stats::Rng& rng) {
  bench::section(title);

  // Runs *directly on the cloud*: network variability is entangled with
  // CPU/memory/I-O variability (Section 4.1), modelled as per-node machine
  // noise on top of the network simulation.
  //
  // The 100 repetitions fan out across every core: each repetition gets its
  // own pre-drawn seed, engine, and cluster, and writes into its slot, so
  // the series is identical at any thread count (including serial).
  constexpr int kReps = 100;
  std::vector<std::uint64_t> seeds(kReps);
  for (auto& s : seeds) s = rng.next_u64();
  std::vector<double> runtimes(kReps);
  runtime::parallel_for_each(0, kReps, [&](std::size_t rep) {
    stats::Rng rep_rng{seeds[rep]};
    bigdata::EngineOptions opt_engine;
    opt_engine.machine_noise_cv = 0.06;
    bigdata::SparkEngine engine{opt_engine};
    auto cluster = bigdata::Cluster::from_cloud(12, 16, profile, rep_rng);
    runtimes[rep] = engine.run(workload, cluster, rep_rng).runtime_s;
  });

  core::ConfirmOptions opt;
  opt.error_bound = 0.01;  // The paper's 1% bound.
  opt.threads = 0;         // Prefix CIs are independent — use every core.
  const auto analysis = core::confirm_analysis(runtimes, opt);

  core::TablePrinter t{{"Repetitions", "Median [s]", "95% CI", "Within 1%?"}};
  for (const std::size_t n : {5u, 10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u, 100u}) {
    const auto& p = analysis.points[n - 1];
    stats::ConfidenceInterval ci;
    ci.estimate = p.estimate;
    ci.lower = p.ci_lower;
    ci.upper = p.ci_upper;
    ci.valid = p.ci_valid;
    t.add_row({std::to_string(n), core::fmt(p.estimate, 1), core::fmt_ci(ci, 1),
               p.within_bound ? "yes" : "no"});
  }
  t.print(std::cout);

  if (analysis.repetitions_needed.has_value()) {
    std::cout << "Repetitions needed for a 95% CI within 1% of the median: "
              << *analysis.repetitions_needed << '\n';
  } else {
    std::cout << "The 1% bound was NOT reached within 100 repetitions.\n";
  }

  // CONFIRM's *prediction* from a 20-run pilot: what an experimenter
  // budgeting the campaign would have forecast.
  const auto prediction = core::predict_repetitions(
      std::span<const double>{runtimes}.subspan(0, 20), opt);
  if (prediction.reliable) {
    std::cout << "Predicted from a 20-run pilot: ~" << prediction.predicted_repetitions
              << " repetitions required.\n";
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  bench::header("CONFIRM analysis: repetitions until CIs converge",
                "Figure 13 (a: K-Means on Google Cloud, b: TPC-DS Q65 on HPCCloud)");

  stats::Rng rng{bench::kBenchSeed};
  confirm_for("(a) HiBench K-Means on Google Cloud", bigdata::hibench_kmeans(),
              cloud::gce_8core(), rng);
  confirm_for("(b) TPC-DS Q65 on HPCCloud", bigdata::tpcds_query(65),
              cloud::hpccloud_8core(), rng);

  std::cout << "Most published studies sit at the extreme left of this table\n"
               "(3-10 repetitions), where the CIs are wide or do not exist.\n";
  return 0;
}
