// Figure 13: CONFIRM analysis for K-Means on Google Cloud and TPC-DS Q65 on
// HPCCloud — median estimates, 95% non-parametric CIs, and 1% error bounds
// as repetitions accumulate.
// Paper: it can take 70 repetitions or more to achieve 95% CIs within 1% of
// the measured median — far beyond the 3-10 repetitions common in the
// literature (Figure 1b).
//
// The grid (workload/cloud pairs, repetition count, machine noise, cluster
// shape, error bound) is the catalog scenario `fig13-confirm`: this bench
// renders the registry spec, so `cloudrepro run fig13-confirm` executes the
// same experiment. The seed schedule stays the bench's own sequential draw
// (one master RNG across both sections) — the registry seed equals the
// fixed bench seed, so the printed numbers are unchanged.

#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/confirm.h"
#include "core/report.h"
#include "runtime/thread_pool.h"
#include "scenario/registry.h"
#include "scenario/runner.h"

using namespace cloudrepro;

namespace {

/// The incarnation-profile cloud of one Figure 13 cell. The uniform
/// token-bucket model never appears here: Figure 13 runs *on the clouds*.
cloud::CloudProfile profile_for(scenario::CloudModel model) {
  switch (model) {
    case scenario::CloudModel::kEc2:
      return cloud::ec2_c5_xlarge();
    case scenario::CloudModel::kGce:
      return cloud::gce_8core();
    case scenario::CloudModel::kHpcCloud:
      return cloud::hpccloud_8core();
    case scenario::CloudModel::kUniformTokenBucket:
      break;
  }
  throw std::logic_error{"fig13 cells run on cloud-profile models"};
}

void confirm_for(const char* title, const scenario::ScenarioSpec& spec,
                 const scenario::WorkloadRef& ref, stats::Rng& rng) {
  bench::section(title);

  const bigdata::WorkloadProfile& workload = scenario::resolve_workload(ref);
  const cloud::CloudProfile profile =
      profile_for(ref.cloud.value_or(spec.cluster.model));
  const std::string bound_pct =
      core::fmt(spec.confirm.error_bound * 100.0, 0) + "%";

  // Runs *directly on the cloud*: network variability is entangled with
  // CPU/memory/I-O variability (Section 4.1), modelled as per-node machine
  // noise on top of the network simulation.
  //
  // The repetitions fan out across every core: each repetition gets its
  // own pre-drawn seed, engine, and cluster, and writes into its slot, so
  // the series is identical at any thread count (including serial).
  const int reps = spec.repetitions;
  std::vector<std::uint64_t> seeds(reps);
  for (auto& s : seeds) s = rng.next_u64();
  std::vector<double> runtimes(reps);
  runtime::parallel_for_each(0, reps, [&](std::size_t rep) {
    stats::Rng rep_rng{seeds[rep]};
    bigdata::EngineOptions opt_engine;
    opt_engine.machine_noise_cv = spec.engine.machine_noise_cv;
    bigdata::SparkEngine engine{opt_engine};
    auto cluster = bigdata::Cluster::from_cloud(
        spec.cluster.nodes, spec.cluster.cores_per_node, profile, rep_rng);
    runtimes[rep] = engine.run(workload, cluster, rep_rng).runtime_s;
  });

  core::ConfirmOptions opt;
  opt.quantile = spec.confirm.quantile;
  opt.confidence = spec.confirm.confidence;
  opt.error_bound = spec.confirm.error_bound;  // The paper's 1% bound.
  opt.threads = 0;  // Prefix CIs are independent — use every core.
  const auto analysis = core::confirm_analysis(runtimes, opt);

  core::TablePrinter t{
      {"Repetitions", "Median [s]", "95% CI", "Within " + bound_pct + "?"}};
  for (const std::size_t n :
       {5u, 10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u, 100u}) {
    if (n > analysis.points.size()) break;
    const auto& p = analysis.points[n - 1];
    stats::ConfidenceInterval ci;
    ci.estimate = p.estimate;
    ci.lower = p.ci_lower;
    ci.upper = p.ci_upper;
    ci.valid = p.ci_valid;
    t.add_row({std::to_string(n), core::fmt(p.estimate, 1), core::fmt_ci(ci, 1),
               p.within_bound ? "yes" : "no"});
  }
  t.print(std::cout);

  if (analysis.repetitions_needed.has_value()) {
    std::cout << "Repetitions needed for a 95% CI within " << bound_pct
              << " of the median: " << *analysis.repetitions_needed << '\n';
  } else {
    std::cout << "The " << bound_pct << " bound was NOT reached within " << reps
              << " repetitions.\n";
  }

  // CONFIRM's *prediction* from a 20-run pilot: what an experimenter
  // budgeting the campaign would have forecast.
  const auto prediction = core::predict_repetitions(
      std::span<const double>{runtimes}.subspan(0, 20), opt);
  if (prediction.reliable) {
    std::cout << "Predicted from a 20-run pilot: ~" << prediction.predicted_repetitions
              << " repetitions required.\n";
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  bench::header("CONFIRM analysis: repetitions until CIs converge",
                "Figure 13 (a: K-Means on Google Cloud, b: TPC-DS Q65 on HPCCloud)");

  const auto& spec = scenario::ScenarioRegistry::builtin().at("fig13-confirm");
  stats::Rng rng{spec.seed};  // == bench::kBenchSeed by registry construction.
  confirm_for("(a) HiBench K-Means on Google Cloud", spec, spec.workloads.at(0),
              rng);
  confirm_for("(b) TPC-DS Q65 on HPCCloud", spec, spec.workloads.at(1), rng);

  std::cout << "Most published studies sit at the extreme left of this table\n"
               "(3-10 repetitions), where the CIs are wide or do not exist.\n";
  return 0;
}
