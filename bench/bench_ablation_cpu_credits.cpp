// Ablation/extension: CPU-credit token buckets (burstable instances).
// The paper's closing observation: "cloud providers use token buckets for
// other resources such as CPU scheduling [60]. This affects cloud-based
// experimentation, as the state of these token buckets is not directly
// visible to users." This bench shows the CPU axis reproduces the same
// phenomenology as the network axis: the compute-bound query Q82 — immune
// to NETWORK budgets in Figure 19 — becomes budget-dependent once the CPU
// is credit-shaped, while its CI widens under a depleting credit schedule.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/cpu_credits.h"
#include "cloud/instances.h"
#include "core/confirm.h"
#include "core/report.h"
#include "simnet/qos.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

int main() {
  bench::header("CPU-credit shaping: the token-bucket pathology on the CPU axis",
                "Section 4.2 closing remark / Wang et al. [60] extension");

  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  cloud::CpuCreditConfig cpu;
  cpu.baseline_fraction = 0.40;
  cpu.vcpus = 16;  // Matches the 16-core cluster nodes.

  stats::Rng rng{bench::kBenchSeed};
  bigdata::SparkEngine engine;

  bench::section("Q82 runtime vs initial CPU credits (10 runs each)");
  core::TablePrinter t{{"Initial credits", "Mean runtime [s]", "vs full credits"}};
  double base = 0.0;
  for (const double credits : {2304.0, 20.0, 10.0, 0.0}) {
    std::vector<double> runtimes;
    for (int rep = 0; rep < 10; ++rep) {
      auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
      cluster.attach_cpu_credits(cpu);
      cluster.set_cpu_credits(credits);
      runtimes.push_back(engine.run(bigdata::tpcds_query(82), cluster, rng).runtime_s);
    }
    const double mean = stats::mean(runtimes);
    if (credits == 2304.0) base = mean;
    t.add_row({core::fmt(credits, 0), core::fmt(mean, 1),
               core::fmt(mean / base, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nQ82 — immune to NETWORK budgets (Figure 19) — stretches toward\n"
               "1/baseline = 2.5x once CPU credits deplete.\n\n";

  bench::section("Depleting credit schedule: the Figure 19 pathology, CPU edition");
  std::vector<double> runtimes;
  for (const double credits : {2304.0, 1000.0, 10.0, 0.0, 0.0}) {
    for (int rep = 0; rep < 10; ++rep) {
      auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
      cluster.attach_cpu_credits(cpu);
      cluster.set_cpu_credits(credits);
      runtimes.push_back(engine.run(bigdata::tpcds_query(82), cluster, rng).runtime_s);
    }
  }
  const auto analysis = core::confirm_analysis(runtimes);
  core::TablePrinter c{{"Cumulative runs", "Median [s]", "CI width [s]"}};
  for (std::size_t n : {10u, 20u, 30u, 40u, 50u}) {
    const auto& p = analysis.points[n - 1];
    c.add_row({std::to_string(n), core::fmt(p.estimate, 1),
               core::fmt(p.ci_upper - p.ci_lower, 1)});
  }
  c.print(std::cout);
  std::cout << "CI widened with more repetitions: "
            << (analysis.ci_widened ? "YES — CPU credits break run independence "
                                      "exactly like network budgets"
                                    : "no")
            << '\n';
  return 0;
}
