// Figure 16: HiBench average runtime (left) and performance variability
// (right, IQR boxes with 1st/99th whiskers) induced by token-bucket budget
// variability, budgets {5000, 1000, 100, 10} Gbit, 10 runs each.
// Paper: the more network-dependent applications (TS, WC) are affected more
// by lower budgets — the initial budget state can cost them 25-50%.
//
// The (workload x budget x repetition) grid is the catalog scenario
// `fig16-hibench-budget`: this bench is a thin renderer over the registry
// spec, so `cloudrepro run fig16-hibench-budget` executes (and caches)
// exactly the same campaign. Every repetition builds its own cluster and
// engine from its seed-derived RNG stream, so the numbers are bit-identical
// at any thread count.

#include <cstdint>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "core/campaign.h"
#include "core/report.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

int main() {
  bench::header("HiBench runtimes vs initial token budget (10 runs each)",
                "Figure 16");

  const auto& spec =
      scenario::ScenarioRegistry::builtin().at("fig16-hibench-budget");
  auto copt = scenario::campaign_options(spec);
  copt.threads = 0;  // All cores; bit-identical to threads=1.
  const auto result =
      core::run_campaign(scenario::build_cells(spec), copt, spec.seed);

  const auto& budgets = spec.budgets;
  std::map<std::string, std::map<double, std::vector<double>>> runtimes;
  std::map<std::string, std::vector<double>> pooled;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const auto& app = result.cells[i].config;
    const double budget = budgets[i % budgets.size()];
    runtimes[app][budget] = result.cells[i].values;
    pooled[app].insert(pooled[app].end(), result.cells[i].values.begin(),
                       result.cells[i].values.end());
  }

  bench::section("(a) Average runtime [s] per budget");
  core::TablePrinter t{{"Budget [Gbit]", "TS", "WC", "S", "BS", "KM"}};
  for (const double budget : budgets) {
    std::vector<std::string> row{core::fmt(budget, 0)};
    for (const char* app : {"TS", "WC", "S", "BS", "KM"}) {
      row.push_back(core::fmt(stats::mean(runtimes[app][budget]), 0));
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nBudget impact (budget-10 mean vs budget-5000 mean):\n";
  for (const char* app : {"TS", "WC", "S", "BS", "KM"}) {
    const double hi = stats::mean(runtimes[app][5000.0]);
    const double lo = stats::mean(runtimes[app][10.0]);
    std::cout << "  " << app << ": +" << core::fmt(100.0 * (lo / hi - 1.0), 0)
              << "%\n";
  }
  std::cout << "(paper: 25-50% for the network-intensive TS and WC)\n\n";

  bench::section("(b) Performance variability pooled over budgets (IQR box, 1/99 whiskers)");
  core::TablePrinter v{{"App", "p1 / p25 / p50 / p75 / p99 [s]", "IQR [s]"}};
  for (const char* app : {"BS", "KM", "S", "WC", "TS"}) {
    const auto box = stats::box_stats(pooled[app]);
    v.add_row({app, bench::box_row(box, 0), core::fmt(box.iqr(), 0)});
  }
  v.print(std::cout);
  return 0;
}
