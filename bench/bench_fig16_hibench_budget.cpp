// Figure 16: HiBench average runtime (left) and performance variability
// (right, IQR boxes with 1st/99th whiskers) induced by token-bucket budget
// variability, budgets {5000, 1000, 100, 10} Gbit, 10 runs each.
// Paper: the more network-dependent applications (TS, WC) are affected more
// by lower budgets — the initial budget state can cost them 25-50%.
//
// The (workload x budget x repetition) grid runs as a parallel campaign:
// every repetition builds its own cluster and engine from its seed-derived
// RNG stream, so the numbers are bit-identical at any thread count.

#include <cstdint>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/campaign.h"
#include "core/report.h"
#include "simnet/qos.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

int main() {
  bench::header("HiBench runtimes vs initial token budget (10 runs each)",
                "Figure 16");

  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  const double budgets[] = {5000.0, 1000.0, 100.0, 10.0};

  const auto& suite = bigdata::hibench_suite();
  std::vector<core::CampaignCell> cells;
  for (const auto& workload : suite) {
    for (const double budget : budgets) {
      cells.push_back(core::CampaignCell{
          workload.name, "budget=" + core::fmt(budget, 0),
          [&proto, &workload, budget](stats::Rng& r) {
            auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
            cluster.set_token_budgets(budget);
            bigdata::SparkEngine engine;
            return engine.run(workload, cluster, r).runtime_s;
          },
          [] {}});
    }
  }

  core::CampaignOptions copt;
  copt.repetitions_per_cell = 10;
  copt.randomize_order = false;  // Cells are already independent (fresh cluster per run).
  copt.threads = 0;              // All cores; bit-identical to threads=1.
  const auto result = core::run_campaign(cells, copt, bench::kBenchSeed);

  std::map<std::string, std::map<double, std::vector<double>>> runtimes;
  std::map<std::string, std::vector<double>> pooled;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const auto& app = suite[i / std::size(budgets)].name;
    const double budget = budgets[i % std::size(budgets)];
    runtimes[app][budget] = result.cells[i].values;
    pooled[app].insert(pooled[app].end(), result.cells[i].values.begin(),
                       result.cells[i].values.end());
  }

  bench::section("(a) Average runtime [s] per budget");
  core::TablePrinter t{{"Budget [Gbit]", "TS", "WC", "S", "BS", "KM"}};
  for (const double budget : budgets) {
    std::vector<std::string> row{core::fmt(budget, 0)};
    for (const char* app : {"TS", "WC", "S", "BS", "KM"}) {
      row.push_back(core::fmt(stats::mean(runtimes[app][budget]), 0));
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nBudget impact (budget-10 mean vs budget-5000 mean):\n";
  for (const char* app : {"TS", "WC", "S", "BS", "KM"}) {
    const double hi = stats::mean(runtimes[app][5000.0]);
    const double lo = stats::mean(runtimes[app][10.0]);
    std::cout << "  " << app << ": +" << core::fmt(100.0 * (lo / hi - 1.0), 0)
              << "%\n";
  }
  std::cout << "(paper: 25-50% for the network-intensive TS and WC)\n\n";

  bench::section("(b) Performance variability pooled over budgets (IQR box, 1/99 whiskers)");
  core::TablePrinter v{{"App", "p1 / p25 / p50 / p75 / p99 [s]", "IQR [s]"}};
  for (const char* app : {"BS", "KM", "S", "WC", "TS"}) {
    const auto box = stats::box_stats(pooled[app]);
    v.add_row({app, bench::box_row(box, 0), core::fmt(box.iqr(), 0)});
  }
  v.print(std::cout);
  return 0;
}
