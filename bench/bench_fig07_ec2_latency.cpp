// Figure 7: Amazon EC2 latency for 10-second TCP streams on c5.xlarge.
// Top: regular behaviour (sub-millisecond RTTs, ~10 Gbps). Bottom: after
// ~10 minutes of full-speed transfer the bucket empties, bandwidth drops to
// ~1 Gbps, and latency rises by two orders of magnitude (deep virtual
// device-driver queues).

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/pcap.h"
#include "measure/rtt.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

namespace {

void report(const char* title, const measure::RttProbeResult& result) {
  bench::section(title);
  const auto& a = result.analysis;
  core::TablePrinter t{{"Metric", "Value"}};
  t.add_row({"packets", std::to_string(a.packet_count)});
  t.add_row({"median RTT [ms]", core::fmt(a.median_rtt_ms, 3)});
  t.add_row({"mean RTT [ms]", core::fmt(a.mean_rtt_ms, 3)});
  t.add_row({"p99 RTT [ms]", core::fmt(a.p99_rtt_ms, 3)});
  t.add_row({"max RTT [ms]", core::fmt(a.max_rtt_ms, 3)});
  t.add_row({"retransmissions", std::to_string(a.retransmissions)});
  t.add_row({"mean bandwidth [Gbps]", core::fmt(a.mean_bandwidth_gbps)});
  t.print(std::cout);
  const auto rtts = result.capture.rtts();
  std::cout << "RTT shape: " << bench::sparkline(rtts) << "\n\n";
}

}  // namespace

int main() {
  bench::header("Amazon EC2 latency, 10-s TCP streams (c5.xlarge)", "Figure 7");

  stats::Rng rng{bench::kBenchSeed};
  measure::RttProbeOptions opt;  // 10-s stream, 128 KB writes.

  // Top half: fresh VM, full token bucket.
  auto fresh = cloud::ec2_c5_xlarge().create_vm(rng);
  const auto regular = measure::run_rtt_probe(fresh, opt, rng);
  report("Regular behaviour (fresh VM; paper: sub-millisecond RTT, ~10 Gbps)",
         regular);

  // Bottom half: the same VM after ~10 more minutes of full-speed transfer.
  fresh.egress->advance(650.0, 10.0);
  const auto throttled = measure::run_rtt_probe(fresh, opt, rng);
  report("Throttled behaviour (bucket empty; paper: ~1 Gbps, RTT up 100x)",
         throttled);

  std::cout << "Latency ratio (throttled / regular medians): "
            << core::fmt(throttled.analysis.median_rtt_ms /
                             regular.analysis.median_rtt_ms, 1)
            << "x\n\n";

  // Methodological cross-check: the paper's actual pipeline — capture all
  // packet headers, then measure send-to-ack offline ("wireshark").
  auto vm2 = cloud::ec2_c5_xlarge().create_vm(rng);
  const auto capture =
      measure::capture_stream(*vm2.egress, vm2.vnic, 10.0, 128.0 * 1024.0, rng);
  const auto wireshark = measure::wireshark_analysis(capture);
  std::cout << "tcpdump+wireshark pipeline (fresh VM): " << wireshark.data_packets
            << " packets captured, median send-to-ack "
            << core::fmt(wireshark.median_rtt_ms, 3) << " ms, "
            << wireshark.retransmissions << " retransmissions — consistent with\n"
            << "the probe-level analysis above.\n";
  return 0;
}
