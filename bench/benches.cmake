# Bench binaries land in ${CMAKE_BINARY_DIR}/bench so that
# `for b in build/bench/*; do $b; done` runs exactly the benches.
set(CLOUDREPRO_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

function(cloudrepro_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  target_link_libraries(${name} PRIVATE cloudrepro_core)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CLOUDREPRO_BENCH_DIR})
endfunction()

cloudrepro_bench(bench_table1_2_survey)
cloudrepro_bench(bench_fig01_survey)
cloudrepro_bench(bench_fig02_ballani)
cloudrepro_bench(bench_fig03_few_reps)
cloudrepro_bench(bench_fig04_hpccloud)
cloudrepro_bench(bench_fig05_gce)
cloudrepro_bench(bench_fig06_ec2)
cloudrepro_bench(bench_fig07_ec2_latency)
cloudrepro_bench(bench_fig08_gce_latency)
cloudrepro_bench(bench_fig09_retrans)
cloudrepro_bench(bench_fig10_traffic)
cloudrepro_bench(bench_fig11_token_bucket)
cloudrepro_bench(bench_fig12_write_size)
cloudrepro_bench(bench_fig13_confirm)
cloudrepro_bench(bench_fig14_emulator)
cloudrepro_bench(bench_table3_summary)
cloudrepro_bench(bench_table4_setup)
cloudrepro_bench(bench_fig15_terasort_budget)
cloudrepro_bench(bench_fig16_hibench_budget)
cloudrepro_bench(bench_fig17_tpcds_budget)
# These render catalog scenarios (src/scenario) instead of inline sweeps.
target_link_libraries(bench_fig13_confirm PRIVATE cloudrepro_scenario)
target_link_libraries(bench_table4_setup PRIVATE cloudrepro_scenario)
target_link_libraries(bench_fig16_hibench_budget PRIVATE cloudrepro_scenario)
target_link_libraries(bench_fig17_tpcds_budget PRIVATE cloudrepro_scenario)
cloudrepro_bench(bench_fig18_straggler)
cloudrepro_bench(bench_fig19_budget_depletion)
cloudrepro_bench(bench_ablation_fluid_vs_packet)
cloudrepro_bench(bench_ablation_replenish)
cloudrepro_bench(bench_ablation_skew)
cloudrepro_bench(bench_ablation_cpu_credits)
cloudrepro_bench(bench_ablation_stationarity)
cloudrepro_bench(bench_ablation_tcp_model)
cloudrepro_bench(bench_ablation_system_comparison)
cloudrepro_bench(bench_ablation_sensitivity)
cloudrepro_bench(bench_ablation_fault_mitigation)

cloudrepro_bench(bench_perf_micro)
# BM_SuiteWorkStealing drives scenario::run_suite and BM_ServeRequest the
# serving daemon's reactor, so the micro binary links the scenario and serve
# layers on top of core.
target_link_libraries(bench_perf_micro PRIVATE cloudrepro_scenario cloudrepro_serve benchmark::benchmark)

# Perf trajectory: `cmake --build build --target bench-smoke` runs the
# campaign/fluid/lock-free hot-path microbenches and records machine-readable
# results in ${CMAKE_BINARY_DIR}/BENCH_campaign.json — commit-over-commit
# numbers come from diffing these files, not from eyeballing console output.
#
# Recording is Release-only: a debug-build JSON poisons the committed
# trajectory (google-benchmark stamps library_build_type, but the *repo*
# numbers would still be garbage). Override for local experiments with
# -DCLOUDREPRO_BENCH_ALLOW_NONRELEASE=ON.
set(CLOUDREPRO_BENCH_FILTER
    "BM_CampaignParallel|BM_FluidAggregateRate|BM_FluidAllToAll|BM_WeekLongTokenBucketProbe|BM_EventQueue|BM_JournalHandoff|BM_SuiteWorkStealing|BM_ServeRequest|BM_ShardedCampaign")
if(CMAKE_BUILD_TYPE STREQUAL "Release" OR CLOUDREPRO_BENCH_ALLOW_NONRELEASE)
  add_custom_target(bench-smoke
    COMMAND $<TARGET_FILE:bench_perf_micro>
            "--benchmark_filter=${CLOUDREPRO_BENCH_FILTER}"
            # library_build_type reflects the *system* libbenchmark package;
            # repo_build_type is the build the numbers actually came from.
            "--benchmark_context=repo_build_type=${CMAKE_BUILD_TYPE}"
            --benchmark_out=${CMAKE_BINARY_DIR}/BENCH_campaign.json
            --benchmark_out_format=json
    DEPENDS bench_perf_micro
    COMMENT "Recording campaign/fluid perf microbenches to BENCH_campaign.json"
    VERBATIM)
else()
  add_custom_target(bench-smoke
    COMMAND ${CMAKE_COMMAND} -E echo
            "bench-smoke: refusing to record BENCH_campaign.json from a '${CMAKE_BUILD_TYPE}' build -- reconfigure with -DCMAKE_BUILD_TYPE=Release, or pass -DCLOUDREPRO_BENCH_ALLOW_NONRELEASE=ON to override."
    COMMAND ${CMAKE_COMMAND} -E false
    COMMENT "bench-smoke requires a Release build"
    VERBATIM)
endif()
