// Tables 1 & 2: the systematic-survey parameters and selection funnel.

#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "survey/corpus.h"

using namespace cloudrepro;

int main() {
  bench::header("Survey parameters and funnel",
                "Tables 1 and 2 (survey methodology)");

  {
    bench::section("Table 1: survey parameters");
    core::TablePrinter t{{"Venues", "Keywords", "Years"}};
    t.add_row({"NSDI, OSDI, SOSP, SC",
               "big data, streaming, Hadoop, MapReduce, Spark, data storage,",
               "2008 - 2018"});
    t.add_row({"", "graph processing, data analytics", ""});
    t.print(std::cout);
    std::cout << '\n';
  }

  stats::Rng rng{bench::kBenchSeed};
  const auto corpus = survey::generate_corpus({}, rng);
  const auto keyword_matches = survey::filter_by_keywords(corpus);
  const auto selected = survey::filter_cloud_experiments(keyword_matches);

  long long citations = 0;
  int nsdi = 0, osdi = 0, sosp = 0, sc = 0;
  for (const auto& a : selected) {
    citations += a.citations;
    switch (a.venue) {
      case survey::Venue::kNsdi: ++nsdi; break;
      case survey::Venue::kOsdi: ++osdi; break;
      case survey::Venue::kSosp: ++sosp; break;
      case survey::Venue::kSc: ++sc; break;
    }
  }

  bench::section("Table 2: survey process (paper: 1,867 -> 138 -> 44; 11,203 citations)");
  core::TablePrinter t{{"Stage", "Articles"}};
  t.add_row({"Total articles", std::to_string(corpus.size())});
  t.add_row({"Filtered automatically by keywords", std::to_string(keyword_matches.size())});
  t.add_row({"Filtered manually for cloud experiments",
             std::to_string(selected.size()) + " (" + std::to_string(nsdi) + " NSDI, " +
                 std::to_string(osdi) + " OSDI, " + std::to_string(sosp) + " SOSP, " +
                 std::to_string(sc) + " SC)"});
  t.add_row({"Citations for selected articles", std::to_string(citations)});
  t.print(std::cout);
  return 0;
}
