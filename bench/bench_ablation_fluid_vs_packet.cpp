// Ablation: the fluid bandwidth model vs the packet-level path.
// The bandwidth figures (4-6, 10, 11, 14-19) use the fluid model; the
// latency figures (7, 8, 12) use the packet path. This ablation checks the
// two agree on achieved bandwidth in the regimes where both apply, so the
// split is an optimization, not a behavioural fork.

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "measure/rtt.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

int main() {
  bench::header("Ablation: fluid vs packet-level bandwidth",
                "DESIGN.md section 5 (model-consistency check)");

  stats::Rng rng{bench::kBenchSeed};
  core::TablePrinter t{{"Cloud", "Fluid mean [Gbps]", "Packet mean [Gbps]",
                        "Relative difference"}};

  const struct {
    const char* name;
    cloud::CloudProfile profile;
  } clouds[] = {{"Amazon EC2 c5.xlarge (fresh)", cloud::ec2_c5_xlarge()},
                {"Google Cloud 8-core", cloud::gce_8core()},
                {"HPCCloud 8-core", cloud::hpccloud_8core()}};

  for (const auto& c : clouds) {
    // Fluid: 10-s full-speed probe window.
    auto vm_fluid = c.profile.create_vm(rng);
    measure::BandwidthProbeOptions probe;
    probe.duration_s = 10.0;
    probe.sample_interval_s = 10.0;
    const auto fluid =
        measure::run_bandwidth_probe(vm_fluid, measure::full_speed(), probe, rng);
    const double fluid_bw = fluid.bandwidth_summary().mean;

    // Packet: same 10 seconds at per-segment granularity. Use 9 KB writes so
    // retransmission overhead (absent from the fluid goodput model by
    // construction) does not skew the comparison.
    auto vm_packet = c.profile.create_vm(rng);
    measure::RttProbeOptions rtt;
    rtt.duration_s = 10.0;
    rtt.write_bytes = 9000.0;
    const auto packet = measure::run_rtt_probe(vm_packet, rtt, rng);
    const double packet_bw = packet.analysis.mean_bandwidth_gbps;

    t.add_row({c.name, core::fmt(fluid_bw), core::fmt(packet_bw),
               core::fmt_pct(std::abs(fluid_bw - packet_bw) / fluid_bw)});
  }
  t.print(std::cout);
  std::cout << "\nThe packet path sits a few percent below the fluid rate (it\n"
               "pays per-segment overhead); both capture the same QoS envelope.\n";
  return 0;
}
