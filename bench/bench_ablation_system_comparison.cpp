// Ablation: "comparing established systems" under cloud variability — the
// survey's motivating scenario. System B is a genuinely 4%-faster variant
// of system A; both run K-Means on the noisy HPCCloud. The table shows how
// often comparisons at the literature's repetition counts (3/5/10) reach a
// supported verdict, versus the paper-recommended scale.

#include <iostream>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/comparison.h"
#include "core/report.h"
#include "stats/rng.h"

using namespace cloudrepro;

namespace {

bigdata::WorkloadProfile faster_variant(const bigdata::WorkloadProfile& base,
                                        double speedup) {
  auto w = base;
  w.name = base.name + "-optimized";
  for (auto& s : w.stages) s.compute_s_mean /= speedup;
  return w;
}

std::vector<double> run_n(const bigdata::WorkloadProfile& w, int n, stats::Rng& rng) {
  bigdata::EngineOptions opt;
  opt.machine_noise_cv = 0.06;  // Direct-on-cloud runs (Section 4.1).
  bigdata::SparkEngine engine{opt};
  std::vector<double> runtimes;
  for (int i = 0; i < n; ++i) {
    auto cluster = bigdata::Cluster::from_cloud(12, 16, cloud::hpccloud_8core(), rng);
    runtimes.push_back(engine.run(w, cluster, rng).runtime_s);
  }
  return runtimes;
}

}  // namespace

int main() {
  bench::header("System comparison under cloud variability",
                "Section 2 motivation (sound comparison of systems)");

  const auto system_a = bigdata::hibench_kmeans();
  const auto system_b = faster_variant(system_a, 1.04);

  stats::Rng rng{bench::kBenchSeed};
  constexpr int kTrials = 30;

  core::TablePrinter t{{"Repetitions per system", "Supported verdicts",
                        "Wrong-direction medians", "Inconclusive (no CI)"}};
  for (const int reps : {3, 5, 10, 30}) {
    int supported = 0, wrong_direction = 0, inconclusive = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto a = run_n(system_a, reps, rng);
      const auto b = run_n(system_b, reps, rng);
      // B is the optimized system: measuring runtimes, B's should be lower.
      const auto v = core::compare_systems(a, b);
      if (!v.median_a.valid || !v.median_b.valid) ++inconclusive;
      if (v.significant) ++supported;
      if (v.a_faster) ++wrong_direction;  // Truth: B is faster.
    }
    t.add_row({std::to_string(reps),
               std::to_string(supported) + "/" + std::to_string(kTrials),
               std::to_string(wrong_direction) + "/" + std::to_string(kTrials),
               std::to_string(inconclusive) + "/" + std::to_string(kTrials)});
  }
  t.print(std::cout);

  std::cout << "\nGround truth: the 'optimized' system is 4% faster. With the\n"
               "literature's 3-10 repetitions most comparisons cannot support\n"
               "any verdict (and some point the wrong way); at 30 repetitions\n"
               "the improvement is reliably detected with valid CIs.\n\n";

  // One fully-reported comparison, the way F5.3/F5.4 want it published.
  bench::section("A single sound comparison, fully reported");
  const auto a = run_n(system_a, 30, rng);
  const auto b = run_n(system_b, 30, rng);
  const auto v = core::compare_systems(a, b);
  std::cout << "System A (baseline):  " << core::fmt_ci(v.median_a, 1) << " s\n";
  std::cout << "System B (optimized): " << core::fmt_ci(v.median_b, 1) << " s\n";
  std::cout << "Verdict: " << v.summary() << '\n';
  return 0;
}
