// Figure 18: token-bucket-induced stragglers. TPC-DS running repeatedly on
// a 12-node cluster with initial budget = 2500 Gbit and mild scheduling
// imbalance: all nodes but one retain budget and stay at the 10 Gbps QoS;
// the most-loaded node depletes its bucket, drops to 1 Gbps, and oscillates
// between high and low rates — the straggler.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "simnet/qos.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

int main() {
  bench::header("Token-bucket-induced stragglers (budget = 2500 Gbit)",
                "Figure 18");

  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};

  stats::Rng rng{bench::kBenchSeed};
  bigdata::EngineOptions opt;
  opt.partition_skew = 0.6;
  opt.timeline_interval_s = 5.0;
  bigdata::SparkEngine engine{opt};

  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(2500.0);

  std::vector<double> straggler_rate, straggler_budget;
  std::vector<double> regular_rate, regular_budget;
  std::size_t straggler_node = 0;
  bool straggler_seen = false;
  double first_straggler_run = -1;

  std::vector<double> runtimes;
  for (int run = 0; run < 18; ++run) {
    const auto r = engine.run(bigdata::tpcds_query(65), cluster, rng);
    runtimes.push_back(r.runtime_s);
    if (!straggler_seen && r.has_straggler()) {
      straggler_seen = true;
      straggler_node = r.slowest_node;
      first_straggler_run = run;
    }
    if (straggler_seen) {
      const std::size_t regular_node = straggler_node == 0 ? 1 : 0;
      for (const auto& p : r.timelines[straggler_node]) {
        straggler_rate.push_back(p.egress_gbps);
        straggler_budget.push_back(p.budget_gbit);
      }
      for (const auto& p : r.timelines[regular_node]) {
        regular_rate.push_back(p.egress_gbps);
        regular_budget.push_back(p.budget_gbit);
      }
    }
  }

  std::cout << "Run times [s]: ";
  for (const double rt : runtimes) std::cout << core::fmt(rt, 0) << ' ';
  std::cout << "\n\n";

  if (!straggler_seen) {
    std::cout << "No straggler emerged (unexpected — see EXPERIMENTS.md).\n";
    return 1;
  }

  std::cout << "Straggler first flagged on run " << first_straggler_run
            << " (node " << straggler_node << ").\n\n";

  bench::section("Regular node (paper: stays at ~10 Gbps, budget retained)");
  std::cout << "rate shape   : " << bench::sparkline(regular_rate) << '\n';
  std::cout << "budget shape : " << bench::sparkline(regular_budget) << '\n';
  std::cout << "remaining budget: " << core::fmt(regular_budget.back(), 0)
            << " Gbit\n\n";

  bench::section("Straggler node (paper: depleted, oscillates 1 <-> 10 Gbps)");
  std::cout << "rate shape   : " << bench::sparkline(straggler_rate) << '\n';
  std::cout << "budget shape : " << bench::sparkline(straggler_budget) << '\n';
  std::cout << "remaining budget: " << core::fmt(straggler_budget.back(), 0)
            << " Gbit\n\n";

  // Oscillation evidence: the straggler's transfer-time rates are bimodal.
  std::vector<double> busy;
  for (const double r : straggler_rate) {
    if (r > 0.05) busy.push_back(r);
  }
  const auto box = stats::box_stats(busy);
  std::cout << "Straggler transfer-time rate p1/p25/p50/p75/p99 [Gbps]: "
            << bench::box_row(box, 2) << '\n';
  std::cout << "Such unpredictable behaviour degrades both whole-setup\n"
               "performance and experiment reproducibility (F4.3).\n";
  return 0;
}
