// Table 3: experiment summary for determining performance variability in
// modern cloud networks — instance types, advertised QoS, duration,
// variability verdict, and cost. The verdict column is *measured*: a short
// probe campaign per instance type decides "Exhibits Variability".

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

namespace {

struct Row {
  const char* duration;
  double duration_s;
  bool starred;
};

}  // namespace

int main() {
  bench::header("Experiment summary across clouds and instance types", "Table 3");

  stats::Rng rng{bench::kBenchSeed};

  core::TablePrinter t{{"Cloud", "InstanceType", "QoS (Gbps)", "Exp. Duration",
                        "Exhibits Variability", "Cost ($)"}};

  const struct {
    cloud::Provider provider;
    const char* name;
    const char* qos;
    const char* duration;
    double probe_hours;
    double cost;
    bool starred;
  } rows[] = {
      {cloud::Provider::kAmazonEc2, "c5.xlarge", "<= 10", "3 weeks", 4.0, 171, true},
      {cloud::Provider::kAmazonEc2, "m5.xlarge", "<= 10", "3 weeks", 4.0, 193, false},
      {cloud::Provider::kAmazonEc2, "c5.9xlarge", "10", "1 day", 2.0, 73, false},
      {cloud::Provider::kAmazonEc2, "m4.16xlarge", "20", "1 day", 2.0, 153, false},
      {cloud::Provider::kGoogleCloud, "1-core", "2", "3 weeks", 2.0, 34, false},
      {cloud::Provider::kGoogleCloud, "2-core", "4", "3 weeks", 2.0, 67, false},
      {cloud::Provider::kGoogleCloud, "4-core", "8", "3 weeks", 2.0, 135, false},
      {cloud::Provider::kGoogleCloud, "8-core", "16", "3 weeks", 2.0, 269, true},
      {cloud::Provider::kHpcCloud, "2-core", "N/A", "1 week", 2.0, 0, false},
      {cloud::Provider::kHpcCloud, "4-core", "N/A", "1 week", 2.0, 0, false},
      {cloud::Provider::kHpcCloud, "8-core", "N/A", "1 week", 2.0, 0, true},
  };

  for (const auto& row : rows) {
    cloud::CloudProfile profile{cloud::find_instance(row.provider, row.name)};
    // Variability verdict from a short full-speed probe campaign: a cloud
    // "exhibits variability" when the 1st-to-99th percentile span exceeds
    // 5% of the median (token buckets trivially qualify once they throttle).
    measure::BandwidthProbeOptions probe;
    probe.duration_s = row.probe_hours * 3600.0;
    const auto trace =
        measure::run_bandwidth_probe(profile, measure::full_speed(), probe, rng);
    const auto box = trace.bandwidth_box();
    const bool variable = (box.p99 - box.p1) > 0.05 * box.p50;

    t.add_row({std::string(row.starred ? "*" : "") + to_string(row.provider),
               row.name, row.qos, row.duration, variable ? "Yes" : "No",
               row.cost > 0 ? core::fmt(row.cost, 0) : "N/A"});
  }
  t.print(std::cout);
  std::cout << "\nAll eleven configurations exhibit variability — the paper's\n"
               "Table 3 verdict column is 'Yes' on every row. Starred rows are\n"
               "the ones the paper presents in depth (and this repo's defaults).\n";
  return 0;
}
