// Ablation/extension: F5.4's stationarity testing in action.
// "When performance is not stationary, results can be limited to time
// periods when stationarity holds." Scans the bandwidth traces of the three
// clouds with a rolling ADF test: the stochastic clouds are stationary
// nearly everywhere, while an EC2 full-speed trace has a non-stationary
// throttle transition that any honest analysis must not average across.

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "stats/stationarity.h"

using namespace cloudrepro;

int main() {
  bench::header("Stationarity scan of bandwidth traces (rolling ADF)",
                "Guideline F5.4 (test samples for stationarity)");

  stats::Rng rng{bench::kBenchSeed};
  measure::BandwidthProbeOptions probe;
  probe.duration_s = 2.0 * 3600.0;  // Two hours: spans EC2's throttle point.

  stats::StationarityScanOptions scan;
  scan.window = 60;   // 10-minute ADF windows (60 x 10-s samples).
  scan.stride = 30;

  core::TablePrinter t{{"Cloud", "Stationary windows", "Largest stationary range"}};
  const struct {
    const char* name;
    cloud::CloudProfile profile;
  } clouds[] = {{"Amazon EC2 c5.xlarge (throttles mid-trace)", cloud::ec2_c5_xlarge()},
                {"Google Cloud 8-core", cloud::gce_8core()},
                {"HPCCloud 8-core", cloud::hpccloud_8core()}};

  for (const auto& c : clouds) {
    const auto trace =
        measure::run_bandwidth_probe(c.profile, measure::full_speed(), probe, rng);
    const auto bw = trace.bandwidths();
    const double fraction = stats::stationary_fraction(bw, scan);
    const auto ranges = stats::stationary_ranges(bw, scan);
    std::size_t largest = 0;
    for (const auto& r : ranges) largest = std::max(largest, r.size());
    t.add_row({c.name, core::fmt_pct(fraction),
               core::fmt(static_cast<double>(largest) * 10.0 / 60.0, 0) + " min"});
  }
  t.print(std::cout);

  std::cout << "\nThe EC2 trace has a structural break at the token-bucket\n"
               "depletion (~10 min in): windows straddling it test\n"
               "non-stationary, so per-F5.4 the pre- and post-throttle periods\n"
               "must be analyzed separately. The contention-noise clouds are\n"
               "stationary nearly everywhere — classic statistics apply there\n"
               "directly (F5.3).\n";
  return 0;
}
