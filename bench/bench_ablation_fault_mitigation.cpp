// Ablation: what straggler mitigation buys. A depleted-budget fault plan
// (token theft drains one node's bucket mid-shuffle) collapses that node to
// the capped low rate; without mitigation the stage barrier waits for it.
// Speculative re-execution moves its remaining transfers to the fastest
// healthy node: the completion straggler ratio (max / median node
// egress-busy time) and the runtime drop. The NIC itself is still
// throttled — speculation routes work around it rather than fixing it.

#include <iostream>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "faults/fault_plan.h"
#include "simnet/qos.h"

using namespace cloudrepro;

namespace {

struct Arm {
  const char* label;
  bool speculation;
};

bigdata::JobResult run_arm(bool speculation, const faults::FaultPlan& plan) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(5000.0);

  bigdata::EngineOptions opt;
  opt.fault_plan = plan;
  opt.speculation.enabled = speculation;
  opt.speculation.check_interval_s = 2.0;
  opt.speculation.slowdown_threshold = 2.0;
  opt.speculation.min_remaining_gbit = 1.0;
  bigdata::SparkEngine engine{opt};
  stats::Rng rng{bench::kBenchSeed};
  return engine.run(bigdata::hibench_terasort(), cluster, rng);
}

}  // namespace

int main() {
  bench::header("Ablation: straggler mitigation under a depleted-budget fault plan",
                "src/faults + EngineOptions::speculation (F4.3 mitigation)");

  // The plan: a noisy neighbour burns node 0's entire token budget right as
  // Terasort's shuffle starts — the same end state as Figure 18's heavy
  // node, but imposed by the fault injector instead of partition skew.
  faults::FaultPlan plan;
  plan.steal_tokens(1.0, 0, 1e6);
  std::cout << plan.describe() << '\n';

  const Arm arms[] = {{"no mitigation", false}, {"speculation", true}};

  core::TablePrinter t{{"Arm", "Runtime [s]", "Rate straggler", "Completion straggler",
                        "Spec launches", "Moved [Gbit]"}};
  double baseline_completion = 0.0;
  double mitigated_completion = 0.0;
  for (const auto& arm : arms) {
    const auto r = run_arm(arm.speculation, plan);
    if (arm.speculation) {
      mitigated_completion = r.completion_straggler_ratio;
    } else {
      baseline_completion = r.completion_straggler_ratio;
    }
    t.add_row({arm.label, core::fmt(r.runtime_s, 1),
               core::fmt(r.straggler_ratio, 2),
               core::fmt(r.completion_straggler_ratio, 2),
               std::to_string(r.recovery.speculative_launches),
               core::fmt(r.recovery.speculated_gbit, 1)});
  }
  t.print(std::cout);

  std::cout << "\nSpeculation " << (mitigated_completion < baseline_completion
                                        ? "LOWERS"
                                        : "DOES NOT LOWER")
            << " the completion straggler ratio ("
            << core::fmt(baseline_completion, 2) << " -> "
            << core::fmt(mitigated_completion, 2) << ").\n"
            << "Without mitigation the whole stage waits on the throttled\n"
               "node. With speculation its remaining transfer volume re-runs\n"
               "on the fastest healthy donor, so both ratios relax: the\n"
               "straggler no longer dominates completion time, and having\n"
               "shed its bytes it no longer sticks out in effective rate\n"
               "either. The NIC stays capped throughout — this is routing\n"
               "around a straggler (F4.3), not repairing one.\n";
  return mitigated_completion < baseline_completion ? 0 : 1;
}
