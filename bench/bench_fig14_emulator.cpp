// Figure 14: validation of the token-bucket emulator against the "real"
// Amazon EC2 shaper, for the 10-30 and 5-30 access patterns starting from a
// nearly-empty bucket. The similar aspect of the two curves indicates the
// emulation is high-quality.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cloud/instances.h"
#include "cloud/tc_emulator.h"
#include "core/report.h"
#include "simnet/qos.h"

using namespace cloudrepro;

namespace {

void validate(const char* title, double burst_s, double idle_s) {
  bench::section(title);

  auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  bucket.initial_gbit = 0.0;  // "The token-bucket budget is nearly empty."

  simnet::TokenBucketQos aws{bucket};
  cloud::TcEmulatorConfig emu_cfg;
  emu_cfg.bucket = bucket;
  cloud::TcEmulator emulator{emu_cfg};

  const auto aws_curve = cloud::onoff_bandwidth_curve(aws, burst_s, idle_s, 90.0);
  const auto emu_curve =
      cloud::onoff_bandwidth_curve(emulator, burst_s, idle_s, 90.0);

  core::TablePrinter t{{"t [s]", "AWS [Gbps]", "Emulation [Gbps]"}};
  for (std::size_t i = 0; i < aws_curve.size(); i += 2) {
    t.add_row({core::fmt(aws_curve[i].t, 0),
               core::fmt(aws_curve[i].bandwidth_gbps, 2),
               core::fmt(emu_curve[i].bandwidth_gbps, 2)});
  }
  t.print(std::cout);

  std::cout << "Curve agreement: correlation = "
            << core::fmt(cloud::curve_correlation(aws_curve, emu_curve), 3)
            << ", RMSE = " << core::fmt(cloud::curve_rmse(aws_curve, emu_curve), 2)
            << " Gbps\n\n";
}

}  // namespace

int main() {
  bench::header("Token-bucket emulator validation vs Amazon EC2", "Figure 14");
  validate("(a) 10-30 pattern", 10.0, 30.0);
  validate("(b) 5-30 pattern", 5.0, 30.0);
  std::cout << "Each burst starts at the 10 Gbps rate on the rest-period refill\n"
               "and collapses to ~1 Gbps once those tokens are spent — the\n"
               "sawtooth the paper shows for both the real cloud and tc.\n";
  return 0;
}
