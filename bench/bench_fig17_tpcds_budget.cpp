// Figure 17: TPC-DS query sensitivity to the token budget.
//  (a) average runtime slowdown per query for budgets {10, 100, 1000}
//      relative to the 5000-Gbit budget (10 runs each);
//  (b) overall performance variability per query, pooled over budgets.
// Paper: larger budgets are always at least as fast; queries with higher
// network demands show more budget sensitivity and wider spreads.

#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "simnet/qos.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"

using namespace cloudrepro;

int main() {
  bench::header("TPC-DS budget sensitivity (10 runs per query per budget)",
                "Figure 17");

  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  const double budgets[] = {5000.0, 1000.0, 100.0, 10.0};

  // The paper's Spark deployments are not perfectly balanced; Figure 18
  // exists precisely because of scheduling imbalance. Use the same mild skew
  // as the straggler experiment.
  bigdata::EngineOptions opt;
  opt.partition_skew = 0.5;

  stats::Rng rng{bench::kBenchSeed};

  bench::section("(a) Average runtime slowdown vs budget=5000");
  core::TablePrinter t{{"Query", "t(5000) [s]", "budget=1000", "budget=100", "budget=10"}};
  std::map<std::string, std::vector<double>> pooled;
  std::vector<double> intensities, slowdowns;
  int sensitive = 0;
  for (const auto& query : bigdata::tpcds_suite()) {
    std::map<double, double> means;
    for (const double budget : budgets) {
      std::vector<double> runtimes;
      bigdata::SparkEngine engine{opt};  // Fresh engine: one partitioning draw.
      for (int rep = 0; rep < 10; ++rep) {
        auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
        cluster.set_token_budgets(budget);
        const double rt = engine.run(query, cluster, rng).runtime_s;
        runtimes.push_back(rt);
        pooled[query.name].push_back(rt);
      }
      means[budget] = stats::mean(runtimes);
    }
    const double base = means[5000.0];
    t.add_row({query.name, core::fmt(base, 0),
               core::fmt(means[1000.0] / base, 2) + "x",
               core::fmt(means[100.0] / base, 2) + "x",
               core::fmt(means[10.0] / base, 2) + "x"});
    if (means[10.0] / base > 1.10) ++sensitive;
    intensities.push_back(query.network_intensity());
    slowdowns.push_back(means[10.0] / base);
  }
  t.print(std::cout);
  std::cout << '\n' << sensitive << "/21 queries slow down by >10% with a depleted "
            << "budget (paper: ~80% of queries are budget-sensitive).\n";
  const auto rho = stats::spearman_correlation(intensities, slowdowns);
  std::cout << "Spearman(network intensity, slowdown) = " << core::fmt(rho.statistic)
            << " (p=" << core::fmt(rho.p_value, 4)
            << ") — the paper's 'queries with higher network demands exhibit\n"
               "more sensitivity', quantified.\n\n";

  bench::section("(b) Overall variability pooled over budgets (IQR box, 1/99 whiskers)");
  core::TablePrinter v{{"Query", "p1 / p25 / p50 / p75 / p99 [s]", "IQR [s]"}};
  for (const auto& query : bigdata::tpcds_suite()) {
    const auto box = stats::box_stats(pooled[query.name]);
    v.add_row({query.name, bench::box_row(box, 0), core::fmt(box.iqr(), 0)});
  }
  v.print(std::cout);
  std::cout << "\nThe heavy joins (Q65, Q68, Q59, Q98, Q19) show both the\n"
               "largest slowdowns and the widest boxes; the compute-bound\n"
               "queries (Q82, Q3, Q52, Q55, Q73) barely move.\n";
  return 0;
}
