// Figure 17: TPC-DS query sensitivity to the token budget.
//  (a) average runtime slowdown per query for budgets {10, 100, 1000}
//      relative to the 5000-Gbit budget (10 runs each);
//  (b) overall performance variability per query, pooled over budgets.
// Paper: larger budgets are always at least as fast; queries with higher
// network demands show more budget sensitivity and wider spreads.
//
// The (query x budget) grid is the catalog scenario `fig17-tpcds-budget` —
// an i.i.d. campaign (fresh cluster and engine per repetition, F5.4), not
// the sequential shared-RNG loop an earlier revision of this bench used, so
// `cloudrepro run fig17-tpcds-budget` caches exactly this campaign.

#include <cstddef>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "bigdata/workload.h"
#include "core/campaign.h"
#include "core/report.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"

using namespace cloudrepro;

int main() {
  bench::header("TPC-DS budget sensitivity (10 runs per query per budget)",
                "Figure 17");

  // The paper's Spark deployments are not perfectly balanced; Figure 18
  // exists precisely because of scheduling imbalance. The scenario pins the
  // same mild skew (0.5) as the straggler experiment.
  const auto& spec =
      scenario::ScenarioRegistry::builtin().at("fig17-tpcds-budget");
  auto copt = scenario::campaign_options(spec);
  copt.threads = 0;  // All cores; bit-identical to threads=1.
  const auto result =
      core::run_campaign(scenario::build_cells(spec), copt, spec.seed);

  const auto& budgets = spec.budgets;  // {5000, 1000, 100, 10}
  bench::section("(a) Average runtime slowdown vs budget=5000");
  core::TablePrinter t{{"Query", "t(5000) [s]", "budget=1000", "budget=100", "budget=10"}};
  std::map<std::string, std::vector<double>> pooled;
  std::vector<double> intensities, slowdowns;
  int sensitive = 0;
  const auto& queries = bigdata::tpcds_suite();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::map<double, double> means;
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      const auto& cell = result.cells[q * budgets.size() + b];
      means[budgets[b]] = stats::mean(cell.values);
      pooled[cell.config].insert(pooled[cell.config].end(),
                                 cell.values.begin(), cell.values.end());
    }
    const double base = means[5000.0];
    t.add_row({queries[q].name, core::fmt(base, 0),
               core::fmt(means[1000.0] / base, 2) + "x",
               core::fmt(means[100.0] / base, 2) + "x",
               core::fmt(means[10.0] / base, 2) + "x"});
    if (means[10.0] / base > 1.10) ++sensitive;
    intensities.push_back(queries[q].network_intensity());
    slowdowns.push_back(means[10.0] / base);
  }
  t.print(std::cout);
  std::cout << '\n' << sensitive << "/21 queries slow down by >10% with a depleted "
            << "budget (paper: ~80% of queries are budget-sensitive).\n";
  const auto rho = stats::spearman_correlation(intensities, slowdowns);
  std::cout << "Spearman(network intensity, slowdown) = " << core::fmt(rho.statistic)
            << " (p=" << core::fmt(rho.p_value, 4)
            << ") — the paper's 'queries with higher network demands exhibit\n"
               "more sensitivity', quantified.\n\n";

  bench::section("(b) Overall variability pooled over budgets (IQR box, 1/99 whiskers)");
  core::TablePrinter v{{"Query", "p1 / p25 / p50 / p75 / p99 [s]", "IQR [s]"}};
  for (const auto& query : queries) {
    const auto box = stats::box_stats(pooled[query.name]);
    v.add_row({query.name, bench::box_row(box, 0), core::fmt(box.iqr(), 0)});
  }
  v.print(std::cout);
  std::cout << "\nThe network-heavy joins show both the largest slowdowns and\n"
               "the widest boxes; the compute-bound queries barely move.\n";
  return 0;
}
