// Ablation: stragglers need BOTH partition skew and a mid-sized budget.
// Sweeps skew x budget for repeated Q65 runs and reports the worst straggler
// ratio seen: with no skew the drain is even (no straggler at any budget);
// with huge budgets nothing depletes; with tiny budgets everyone throttles
// (slow but balanced). Only the skew x mid-budget corner reproduces
// Figure 18.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "simnet/qos.h"

using namespace cloudrepro;

int main() {
  bench::header("Ablation: straggler emergence vs skew and budget",
                "DESIGN.md section 5 (Figure 18 mechanism)");

  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};

  core::TablePrinter t{{"Skew \\ Budget [Gbit]", "10", "2500", "5400 (full)"}};
  for (const double skew : {0.0, 0.3, 0.6}) {
    std::vector<std::string> row{core::fmt(skew, 1)};
    for (const double budget : {10.0, 2500.0, 5400.0}) {
      stats::Rng rng{bench::kBenchSeed};
      bigdata::EngineOptions opt;
      opt.partition_skew = skew;
      bigdata::SparkEngine engine{opt};
      auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
      cluster.set_token_budgets(budget);
      double worst = 0.0;
      for (int run = 0; run < 16; ++run) {
        worst = std::max(worst,
                         engine.run(bigdata::tpcds_query(65), cluster, rng)
                             .straggler_ratio);
      }
      row.push_back(core::fmt(worst, 2) + (worst >= 1.5 ? " (straggler!)" : ""));
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nWorst straggler ratio over 16 consecutive runs (>= 1.5 flags a\n"
               "straggler). Without skew no node ever sticks out (column-wise\n"
               "1.00); with a full budget nothing depletes within the horizon\n"
               "(row-wise 1.00). Stragglers need BOTH: at budget 2500 the heavy\n"
               "node depletes mid-sequence (Figure 18); at budget 10 the light\n"
               "nodes refill during the heavy node's long transfers and recover\n"
               "to the high rate while the heavy node stays capped — the\n"
               "paper's 'non-trivial combination' (F4.3).\n";
  return 0;
}
