// Figure 5: variable network bandwidth in Google Cloud for the three access
// patterns, one week each, as IQR boxes with 1st/99th whiskers.
// Paper: longer streams exhibit low variability and better performance —
// full-speed stable near 15.8 Gbps; 5-30 has a fairly long tail (down to
// ~13 Gbps); attributed to idle flows being routed via gateways in the
// Andromeda virtual network.

#include <iostream>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/iperf.h"
#include "measure/patterns.h"

using namespace cloudrepro;

int main() {
  bench::header("Google Cloud bandwidth by access pattern (8-core pair)", "Figure 5");

  stats::Rng rng{bench::kBenchSeed};
  core::TablePrinter t{
      {"Pattern", "Samples", "p1 / p25 / p50 / p75 / p99 [Gbps]", "CoV"}};

  for (const auto& pattern : measure::canonical_patterns()) {
    measure::BandwidthProbeOptions probe;  // One week.
    const auto trace =
        measure::run_bandwidth_probe(cloud::gce_8core(), pattern, probe, rng);
    const auto box = trace.bandwidth_box();
    const auto s = trace.bandwidth_summary();
    t.add_row({pattern.name, std::to_string(trace.samples.size()),
               bench::box_row(box), core::fmt_pct(s.coefficient_of_variation)});
  }
  t.print(std::cout);

  std::cout << "\nPaper reference: full-speed is stable and high (~15.8 Gbps);\n"
               "10-30 mildly degraded; 5-30 shows the long low-side tail —\n"
               "the idle-resume (cold virtual-network path) penalty.\n";
  return 0;
}
