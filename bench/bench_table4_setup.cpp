// Table 4: big-data experiments on modern cloud networks — the workload,
// scale, network model, software, and cluster size used for Section 4,
// echoed from this repository's actual configuration.
//
// The workload grid, cluster shape, and repetition floor come from the
// catalog scenario `table4-setup`: the rows below are whatever
// `cloudrepro run table4-setup` would sweep, not a second hand-kept list.

#include <iostream>
#include <string>

#include "bench_common.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "scenario/registry.h"
#include "scenario/runner.h"

using namespace cloudrepro;

int main() {
  bench::header("Big-data experiment setup", "Table 4");

  const auto& spec = scenario::ScenarioRegistry::builtin().at("table4-setup");
  const std::string nodes = std::to_string(spec.cluster.nodes);

  core::TablePrinter t{{"Workload", "Size", "Network", "Software (emulated)", "#Nodes"}};
  t.add_row({"HiBench [31]", "BigData", "Token-bucket, Figure 14",
             "Spark 2.4.0, Hadoop 2.7.3", nodes});
  t.add_row({"TPC-DS [48]", "SF-2000", "Token-bucket, Figure 14",
             "Spark 2.4.0, Hadoop 2.7.3", nodes});
  t.print(std::cout);

  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  std::cout << "\nEmulated shaper (c5.xlarge): high " << core::fmt(bucket.high_rate_gbps, 0)
            << " Gbps, low " << core::fmt(bucket.low_rate_gbps, 0)
            << " Gbps, replenish " << core::fmt(bucket.replenish_gbps, 0)
            << " Gbit/s, capacity " << core::fmt(bucket.capacity_gbit, 0) << " Gbit\n";
  std::cout << "Cluster model: " << nodes << " nodes x "
            << spec.cluster.cores_per_node
            << " cores, 64 GB, SSD; per-node egress\nshaping; each workload runs >= "
            << spec.repetitions << " times per bucket configuration.\n\n";

  bench::section("Workload profiles in this reproduction");
  core::TablePrinter w{{"Workload", "Stages", "Compute/node [s]",
                        "Shuffle/node [Gbit]", "Net intensity [Gbit/s]"}};
  for (const auto& ref : spec.workloads) {
    const auto& p = scenario::resolve_workload(ref);
    w.add_row({p.suite + " " + p.name, std::to_string(p.stages.size()),
               core::fmt(p.nominal_compute_s(spec.cluster.cores_per_node), 0),
               core::fmt(p.total_shuffle_gbit_per_node(), 0),
               core::fmt(p.network_intensity(), 2)});
  }
  w.print(std::cout);
  return 0;
}
