// Figure 11: token-bucket parameters identified for the EC2 c5.* family.
// For each instance type we run 15 independent identification probes
// (continuous iperf until the throttle engages, plus a rest-and-drain pass
// to estimate the replenish rate), exactly as in Section 3.3.
// Paper: time-to-empty and the capped (low) bandwidth grow with machine
// size; parameters are not consistent across incarnations.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cloud/instances.h"
#include "core/report.h"
#include "measure/bucket_probe.h"
#include "stats/descriptive.h"

using namespace cloudrepro;

int main() {
  bench::header("EC2 c5.* token-bucket parameter identification (15 probes each)",
                "Figure 11");

  stats::Rng rng{bench::kBenchSeed};
  core::TablePrinter t{{"Machine type", "Time-to-empty p25/p50/p75 [s]",
                        "High bw [Gbps]", "Low bw [Gbps]", "Replenish [Gbps]",
                        "Budget est. [Gbit]"}};

  for (const char* name : {"c5.large", "c5.xlarge", "c5.2xlarge", "c5.4xlarge"}) {
    cloud::CloudProfile profile{
        cloud::find_instance(cloud::Provider::kAmazonEc2, name)};
    std::vector<double> tte, high, low, replenish, budget;
    for (int probe = 0; probe < 15; ++probe) {
      measure::BucketProbeOptions opt;
      opt.max_probe_s = 4.0 * 3600.0;
      const auto r = measure::identify_token_bucket(profile, opt, rng);
      if (!r.bucket_detected) continue;
      tte.push_back(r.time_to_empty_s);
      high.push_back(r.high_rate_gbps);
      low.push_back(r.low_rate_gbps);
      replenish.push_back(r.replenish_gbps);
      budget.push_back(r.inferred_budget_gbit);
    }
    const auto tte_s = stats::sorted(tte);
    t.add_row({name,
               core::fmt(stats::quantile_sorted(tte_s, 0.25), 0) + " / " +
                   core::fmt(stats::quantile_sorted(tte_s, 0.50), 0) + " / " +
                   core::fmt(stats::quantile_sorted(tte_s, 0.75), 0),
               core::fmt(stats::median(high), 1), core::fmt(stats::median(low), 2),
               core::fmt(stats::median(replenish), 2),
               core::fmt(stats::median(budget), 0)});
  }
  t.print(std::cout);

  std::cout << "\nPaper reference shape: time-to-empty grows several-fold from\n"
               "c5.large to c5.4xlarge; low bandwidth grows proportionally with\n"
               "size; the high rate is ~10 Gbps throughout; the boxplot spread\n"
               "reflects incarnation-to-incarnation inconsistency.\n";
  return 0;
}
