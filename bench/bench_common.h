#pragma once

// Shared helpers for the per-figure bench binaries. Every bench prints the
// rows/series of one of the paper's tables or figures; EXPERIMENTS.md maps
// paper values to the values these binaries print.

#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/report.h"
#include "stats/descriptive.h"

namespace cloudrepro::bench {

/// Fixed seed so every bench run prints identical numbers (F5.x in action).
inline constexpr std::uint64_t kBenchSeed = 20200225;  // NSDI '20 day one.

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================================\n"
            << title << '\n'
            << "Reproduces: " << paper_ref << '\n'
            << "==========================================================================\n\n";
}

inline void section(const std::string& name) { std::cout << "--- " << name << " ---\n"; }

/// Prints a box-stat row in the paper's 1/25/50/75/99-percentile convention.
inline std::string box_row(const stats::BoxStats& b, int precision = 2) {
  using core::fmt;
  return fmt(b.p1, precision) + " / " + fmt(b.p25, precision) + " / " +
         fmt(b.p50, precision) + " / " + fmt(b.p75, precision) + " / " +
         fmt(b.p99, precision);
}

/// Downsampled "t, value" series dump (for the time-series figures).
inline void print_series(const std::string& name, std::span<const double> t,
                         std::span<const double> v, std::size_t max_points = 24) {
  std::cout << name << " (t -> value, " << v.size() << " points, downsampled):\n";
  const std::size_t stride = v.size() <= max_points ? 1 : v.size() / max_points;
  for (std::size_t i = 0; i < v.size(); i += stride) {
    std::cout << "  t=" << core::fmt(t[i], 0) << "  " << core::fmt(v[i], 3) << '\n';
  }
  std::cout << '\n';
}

/// ASCII sparkline of a series (quick visual shape check in the terminal).
inline std::string sparkline(std::span<const double> v, std::size_t width = 60) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (v.empty()) return "";
  double lo = v[0], hi = v[0];
  for (const double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const double span = hi - lo;
  std::string out;
  const std::size_t stride = v.size() <= width ? 1 : v.size() / width;
  for (std::size_t i = 0; i < v.size(); i += stride) {
    const double norm = span > 0.0 ? (v[i] - lo) / span : 0.5;
    out += levels[static_cast<std::size_t>(norm * 7.0)];
  }
  return out;
}

}  // namespace cloudrepro::bench
