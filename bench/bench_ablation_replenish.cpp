// Ablation: replenish-while-sending vs pause-only replenish.
// The paper observes that "once the token bucket empties, transmission at
// the capped rate is sufficient to keep it from filling back up" — which is
// only true if tokens replenish *concurrently* with sending (our model).
// This ablation contrasts that model with an alternative where tokens only
// accrue while the link is idle, and shows the concurrent model is the one
// matching the measured EC2 behaviour (low rate == replenish rate => the
// bucket never recovers under load; the alternative would recover whenever
// the sender pauses even briefly at the capped rate).

#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "simnet/token_bucket.h"

using namespace cloudrepro;

int main() {
  bench::header("Ablation: token-bucket replenish semantics",
                "DESIGN.md section 5 (bucket-model choice)");

  simnet::TokenBucketConfig cfg;
  cfg.capacity_gbit = 100.0;
  cfg.initial_gbit = 0.0;
  cfg.high_rate_gbps = 10.0;
  cfg.low_rate_gbps = 1.0;
  cfg.replenish_gbps = 1.0;

  bench::section("Concurrent replenish (implemented): capped sending pins the bucket");
  {
    simnet::TokenBucket tb{cfg};
    core::TablePrinter t{{"t [s]", "Budget [Gbit]", "Allowed rate [Gbps]"}};
    for (int step = 0; step <= 5; ++step) {
      t.add_row({std::to_string(step * 60), core::fmt(tb.budget(), 1),
                 core::fmt(tb.allowed_rate(), 1)});
      tb.advance(60.0, tb.allowed_rate());  // Keep sending at the cap.
    }
    t.print(std::cout);
    std::cout << "Budget stays at 0 under capped-rate transmission — matching\n"
                 "the paper's measurement.\n\n";
  }

  bench::section("Pause-only replenish (counterfactual)");
  {
    // Emulate pause-only accrual: tokens only advance during idle seconds.
    double budget = 0.0;
    core::TablePrinter t{{"t [s]", "Budget [Gbit]", "Note"}};
    double high_seconds = 0.0;
    for (int minute = 0; minute <= 5; ++minute) {
      t.add_row({std::to_string(minute * 60), core::fmt(budget, 1),
                 budget > 0 ? "would grant bursts at 10 Gbps" : "capped"});
      // 55 s sending (no refill under this semantics), 5 s OS-level stalls.
      budget += 5.0 * cfg.replenish_gbps;
      high_seconds += budget / (cfg.high_rate_gbps - cfg.replenish_gbps);
      budget = 0.0;  // Burst immediately spends it.
    }
    t.print(std::cout);
    std::cout << "Under pause-only accrual even tiny stalls would buy visible\n"
                 "10 Gbps bursts (" << core::fmt(high_seconds, 1)
              << " s of high rate over 5 min) — a sawtooth the paper's\n"
                 "full-speed EC2 traces do not show. The concurrent model is\n"
                 "the faithful one.\n";
  }
  return 0;
}
