// Performance microbenchmarks (google-benchmark): the hot paths that make
// week-scale simulations and 100-repetition CONFIRM sweeps cheap.

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/campaign.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "runtime/calendar_queue.h"
#include "runtime/spsc_ring.h"
#include "runtime/thread_pool.h"
#include "obs/metrics.h"
#include "scenario/result_store.h"
#include "scenario/runner.h"
#include "serve/frame.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "shard/local.h"
#include "simnet/fluid_network.h"
#include "simnet/packet_path.h"
#include "simnet/qos.h"
#include "stats/ci.h"
#include "stats/rng.h"

using namespace cloudrepro;

namespace {

void BM_FluidAllToAll(benchmark::State& state) {
  const auto nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simnet::FluidNetwork net;
    for (int i = 0; i < nodes; ++i) {
      net.add_node(std::make_unique<simnet::FixedRateQos>(10.0), 10.0);
    }
    for (int s = 0; s < nodes; ++s) {
      for (int d = 0; d < nodes; ++d) {
        if (s != d) net.start_flow(static_cast<std::size_t>(s),
                                   static_cast<std::size_t>(d), 8.0);
      }
    }
    benchmark::DoNotOptimize(net.run_until_flows_complete(1e6));
  }
  state.SetItemsProcessed(state.iterations() * nodes * (nodes - 1));
}
BENCHMARK(BM_FluidAllToAll)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_WeekLongTokenBucketProbe(benchmark::State& state) {
  for (auto _ : state) {
    stats::Rng rng{1};
    measure::BandwidthProbeOptions probe;
    probe.duration_s = 24.0 * 3600.0;  // One simulated day per iteration.
    benchmark::DoNotOptimize(measure::run_bandwidth_probe(
        cloud::ec2_c5_xlarge(), measure::full_speed(), probe, rng));
  }
}
BENCHMARK(BM_WeekLongTokenBucketProbe)->Unit(benchmark::kMillisecond);

void BM_PacketStreamOneSecond(benchmark::State& state) {
  const double write = static_cast<double>(state.range(0));
  stats::Rng rng{2};
  for (auto _ : state) {
    simnet::FixedRateQos qos{10.0};
    auto vnic = simnet::ec2_vnic();
    simnet::PacketPathConfig cfg;
    cfg.duration_s = 1.0;
    cfg.write_bytes = write;
    cfg.max_recorded_packets = 1000;
    benchmark::DoNotOptimize(simnet::run_packet_stream(qos, vnic, cfg, rng));
  }
  state.SetLabel("write=" + std::to_string(state.range(0)) + "B");
}
BENCHMARK(BM_PacketStreamOneSecond)->Arg(9000)->Arg(131072)->Unit(benchmark::kMillisecond);

void BM_SparkJob(benchmark::State& state) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  stats::Rng rng{3};
  for (auto _ : state) {
    auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
    bigdata::SparkEngine engine;
    benchmark::DoNotOptimize(engine.run(bigdata::tpcds_query(65), cluster, rng));
  }
}
BENCHMARK(BM_SparkJob)->Unit(benchmark::kMicrosecond);

// A CPU-bound campaign cell: each repetition burns deterministic arithmetic
// from its own seed-derived stream, so the bench isolates the scheduler's
// scaling from journal/IO costs. Threads 1/2/4/8 chart the speedup curve
// (expect ~linear up to the core count; flat on a single-core host).
void BM_CampaignParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<core::CampaignCell> cells;
    for (int c = 0; c < 4; ++c) {
      cells.push_back(core::CampaignCell{
          "cell" + std::to_string(c), "t",
          [](stats::Rng& r) {
            double acc = 0.0;
            for (int i = 0; i < 50000; ++i) acc += r.normal();
            return acc;
          },
          [] {}});
    }
    core::CampaignOptions opt;
    opt.repetitions_per_cell = 8;
    opt.threads = threads;
    benchmark::DoNotOptimize(
        core::run_campaign(std::move(cells), opt, std::uint64_t{7}));
  }
  state.SetItemsProcessed(state.iterations() * 4 * 8);
}
BENCHMARK(BM_CampaignParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Per-node aggregate-rate queries against a large live flow set: O(1) via
// the caches maintained by allocate_rates, independent of the ~1k active
// flows (these queries run per node per event step in week-long probes).
void BM_FluidAggregateRate(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  simnet::FluidNetwork net;
  for (std::size_t i = 0; i < nodes; ++i) {
    net.add_node(std::make_unique<simnet::FixedRateQos>(10.0), 10.0);
  }
  for (std::size_t s = 0; s < nodes; ++s) {
    for (std::size_t d = 0; d < nodes; ++d) {
      if (s != d) net.start_flow(s, d);  // Open-ended: stays active.
    }
  }
  net.run_for(1e-6);  // Forces an allocation so rates are non-zero.
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < nodes; ++i) {
      acc += net.node_egress_rate(i) + net.node_ingress_rate(i);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * nodes * 2);
}
BENCHMARK(BM_FluidAggregateRate)->Arg(8)->Arg(16)->Arg(32);

// Deterministic jitter for the hold model below: xorshift64* mapped to
// [0.5, 1.5). A *constant* increment is degenerate (the whole population
// collapses onto one timestamp and the bench measures tie-breaking, not
// scheduling), so classic event-queue benchmarks randomize it.
double hold_jitter(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return 0.5 + static_cast<double>((s * 2685821657736338717ULL) >> 11) *
                   (1.0 / 9007199254740992.0);
}

// The event-queue hold model: a steady-state population of pending timers
// where each pop immediately reschedules at time + a jittered cadence. Arg 0
// picks the implementation (0 = std::priority_queue baseline with explicit
// (time, seq) tie-breaking, 1 = the calendar queue that replaced it); arg 1
// picks the cadence profile. Uniform (RTT-scale, arg 1 = 0) is the
// tcp_stream/injector shape the swap targets; mixed (arg 1 = 1) spans five
// orders of magnitude and is deliberately adversarial for a calendar — the
// fast cohort clusters inside a sliver of the span, so it charts the skew
// penalty the width-retune heuristic cannot remove.
void BM_EventQueue(benchmark::State& state) {
  const bool use_calendar = state.range(0) != 0;
  const bool mixed = state.range(1) != 0;
  constexpr int kPopulation = 256;
  const auto cadence_of = [mixed](int i) {
    if (!mixed) return 1e-3;
    switch (i % 3) {
      case 0: return 1e-3;
      case 1: return 0.1;
      default: return 60.0;
    }
  };
  std::uint64_t jitter_state = 0x9E3779B97F4A7C15ULL;

  struct HeapEntry {
    double time;
    std::uint64_t seq;
    int id;
    bool operator>(const HeapEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  if (use_calendar) {
    runtime::CalendarQueue<int> queue{1e-3};
    for (int i = 0; i < kPopulation; ++i) {
      queue.push(cadence_of(i) * hold_jitter(jitter_state), i);
    }
    for (auto _ : state) {
      const double now = queue.next_time();
      const int id = queue.pop();
      queue.push(now + cadence_of(id) * hold_jitter(jitter_state), id);
      benchmark::DoNotOptimize(id);
    }
  } else {
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> queue;
    std::uint64_t seq = 0;
    for (int i = 0; i < kPopulation; ++i) {
      queue.push({cadence_of(i) * hold_jitter(jitter_state), seq++, i});
    }
    for (auto _ : state) {
      const HeapEntry top = queue.top();
      queue.pop();
      queue.push(
          {top.time + cadence_of(top.id) * hold_jitter(jitter_state), seq++, top.id});
      benchmark::DoNotOptimize(top.id);
    }
  }
  state.SetLabel(std::string{use_calendar ? "calendar" : "priority_queue"} +
                 (mixed ? "/mixed" : "/uniform"));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue)->Args({0, 0})->Args({1, 0})->Args({0, 1})->Args({1, 1});

// Producer-to-journal-writer handoff: one producer hands journal-line-sized
// strings to a consumer. Arg 0 is the old mutex+condvar deque; arg 1 the
// SPSC ring the campaign now uses. Items/sec is the handoff throughput.
void BM_JournalHandoff(benchmark::State& state) {
  const bool use_ring = state.range(0) != 0;
  constexpr std::size_t kItems = 10000;
  const std::string payload =
      R"({"cell":3,"rep":17,"value":112.47381929,"crc":"9a3b2c1d"})";
  for (auto _ : state) {
    std::size_t received = 0;
    if (use_ring) {
      runtime::SpscRing<std::string> ring{256};
      std::thread producer{[&ring, &payload] {
        for (std::size_t i = 0; i < kItems; ++i) {
          std::string line = payload;
          while (!ring.try_push(line)) std::this_thread::yield();
        }
      }};
      std::string out;
      while (received < kItems) {
        if (ring.try_pop(out)) {
          benchmark::DoNotOptimize(out.data());
          ++received;
        } else {
          std::this_thread::yield();  // Single-core hosts: let the producer run.
        }
      }
      producer.join();
    } else {
      std::mutex mu;
      std::condition_variable cv;
      std::deque<std::string> queue;
      std::thread producer{[&] {
        for (std::size_t i = 0; i < kItems; ++i) {
          {
            std::lock_guard<std::mutex> lock{mu};
            queue.push_back(payload);
          }
          cv.notify_one();
        }
      }};
      while (received < kItems) {
        std::unique_lock<std::mutex> lock{mu};
        cv.wait(lock, [&] { return !queue.empty(); });
        while (!queue.empty()) {
          benchmark::DoNotOptimize(queue.front().data());
          queue.pop_front();
          ++received;
        }
      }
      producer.join();
    }
  }
  state.SetLabel(use_ring ? "spsc_ring" : "mutex_queue");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kItems));
}
BENCHMARK(BM_JournalHandoff)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Suite scheduling: two unequal scenarios, serial member loop (arg 0)
// versus the shared work-stealing pool (arg 1, four workers). The stealing
// arm's win is the idle time reclaimed when the light member's cells finish
// early; on a single-core host the two arms should tie (no regression).
void BM_SuiteWorkStealing(benchmark::State& state) {
  const bool stealing = state.range(0) != 0;
  std::vector<scenario::ScenarioSpec> specs(2);
  specs[0].name = "bench-suite-heavy";
  specs[0].workloads = {{"hibench", "TS", std::nullopt}};
  specs[0].budgets = {5000.0, 10.0};
  specs[0].repetitions = 3;
  specs[1].name = "bench-suite-light";
  specs[1].workloads = {{"hibench", "KM", std::nullopt}};
  specs[1].budgets = {1000.0};
  specs[1].repetitions = 2;

  scenario::RunOptions options;
  options.threads = stealing ? 4 : 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::run_suite(specs, options));
  }
  state.SetLabel(stealing ? "work_stealing_4" : "serial");
  state.SetItemsProcessed(state.iterations() * (3 * 2 + 2));
}
BENCHMARK(BM_SuiteWorkStealing)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The sharded driver against the plain runner on the same cold campaign:
// arg 0 is the single-node baseline, args 1/2/4 run the full shard
// machinery (deterministic partition, per-worker cell materialization,
// record merge, journal write, replay publication). shards=1's delta over
// the baseline *is* the coordination overhead — it must stay within noise,
// since both arms execute identical measurements; larger args chart how
// much of a multi-cell campaign the extra workers reclaim.
void BM_ShardedCampaign(benchmark::State& state) {
  namespace fs = std::filesystem;
  const auto shards = static_cast<std::size_t>(state.range(0));
  const fs::path root = fs::temp_directory_path() / "cloudrepro-bench-shard";
  scenario::ScenarioSpec spec;
  spec.name = "bench-shard";
  spec.workloads = {{"hibench", "TS", std::nullopt}, {"hibench", "KM", std::nullopt}};
  spec.budgets = {5000.0, 10.0};
  // Enough repetitions that per-campaign fixed costs (thread spawn, the
  // extra journal fsync + replay pass) amortize: shards=1 is then measuring
  // coordination overhead against real work, not against an empty campaign.
  spec.repetitions = 64;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(root);  // Cold cache: every iteration executes the campaign.
    state.ResumeTiming();
    scenario::ResultStore store{root};
    if (shards == 0) {
      scenario::RunOptions run;
      run.threads = 1;
      run.store = &store;
      benchmark::DoNotOptimize(scenario::run_scenario(spec, run));
    } else {
      shard::LocalShardOptions options;
      options.shards = shards;
      options.store = &store;
      benchmark::DoNotOptimize(shard::run_scenario_sharded(spec, options));
    }
  }
  fs::remove_all(root);
  state.SetLabel(shards == 0 ? "baseline" : "shards_" + std::to_string(shards));
  state.SetItemsProcessed(state.iterations() * 4 * 64);
}
BENCHMARK(BM_ShardedCampaign)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// The serving daemon's cached-hit request path over the in-memory
// transport: request framing, reactor dispatch, the checked summary read,
// and response framing — everything but the wire. This is the per-request
// overhead a warm `cloudrepro fetch` pays on top of the network.
void BM_ServeRequest(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "cloudrepro-bench-serve";
  fs::remove_all(root);
  {
    obs::MetricsRegistry metrics;
    scenario::ResultStore store{root, &metrics};
    scenario::ScenarioSpec spec;
    spec.name = "bench-serve";
    spec.workloads = {{"hibench", "TS", std::nullopt}};
    spec.budgets = {5000.0};
    spec.repetitions = 2;
    scenario::RunOptions run;
    run.store = &store;
    (void)scenario::run_scenario(spec, run);  // Warm: every GET below hits.

    serve::ServerCore core{store, metrics, {}};
    auto [client_end, server_end] = serve::make_memory_pair();
    core.add_connection(std::move(server_end));

    const std::string frame = serve::get_request_frame(spec, std::nullopt) + "\n";
    serve::FrameDecoder decoder{1u << 20};
    char buffer[4096];
    std::string response;
    for (auto _ : state) {
      (void)client_end->write(frame);
      bool got = false;
      while (!got) {
        core.poll_once();
        for (;;) {
          const auto r = client_end->read(buffer, sizeof buffer);
          if (r.status != serve::IoStatus::kOk) break;
          decoder.push(std::string_view{buffer, r.bytes});
          if (decoder.next(response) == serve::FrameDecoder::Status::kFrame) {
            got = true;
            break;
          }
        }
      }
      benchmark::DoNotOptimize(response.data());
    }
  }
  fs::remove_all(root);
}
BENCHMARK(BM_ServeRequest);

void BM_MedianCi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng{4};
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(100.0, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::median_ci(xs));
  }
}
BENCHMARK(BM_MedianCi)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
