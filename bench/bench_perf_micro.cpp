// Performance microbenchmarks (google-benchmark): the hot paths that make
// week-scale simulations and 100-repetition CONFIRM sweeps cheap.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/campaign.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "simnet/fluid_network.h"
#include "simnet/packet_path.h"
#include "simnet/qos.h"
#include "stats/ci.h"
#include "stats/rng.h"

using namespace cloudrepro;

namespace {

void BM_FluidAllToAll(benchmark::State& state) {
  const auto nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simnet::FluidNetwork net;
    for (int i = 0; i < nodes; ++i) {
      net.add_node(std::make_unique<simnet::FixedRateQos>(10.0), 10.0);
    }
    for (int s = 0; s < nodes; ++s) {
      for (int d = 0; d < nodes; ++d) {
        if (s != d) net.start_flow(static_cast<std::size_t>(s),
                                   static_cast<std::size_t>(d), 8.0);
      }
    }
    benchmark::DoNotOptimize(net.run_until_flows_complete(1e6));
  }
  state.SetItemsProcessed(state.iterations() * nodes * (nodes - 1));
}
BENCHMARK(BM_FluidAllToAll)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_WeekLongTokenBucketProbe(benchmark::State& state) {
  for (auto _ : state) {
    stats::Rng rng{1};
    measure::BandwidthProbeOptions probe;
    probe.duration_s = 24.0 * 3600.0;  // One simulated day per iteration.
    benchmark::DoNotOptimize(measure::run_bandwidth_probe(
        cloud::ec2_c5_xlarge(), measure::full_speed(), probe, rng));
  }
}
BENCHMARK(BM_WeekLongTokenBucketProbe)->Unit(benchmark::kMillisecond);

void BM_PacketStreamOneSecond(benchmark::State& state) {
  const double write = static_cast<double>(state.range(0));
  stats::Rng rng{2};
  for (auto _ : state) {
    simnet::FixedRateQos qos{10.0};
    auto vnic = simnet::ec2_vnic();
    simnet::PacketPathConfig cfg;
    cfg.duration_s = 1.0;
    cfg.write_bytes = write;
    cfg.max_recorded_packets = 1000;
    benchmark::DoNotOptimize(simnet::run_packet_stream(qos, vnic, cfg, rng));
  }
  state.SetLabel("write=" + std::to_string(state.range(0)) + "B");
}
BENCHMARK(BM_PacketStreamOneSecond)->Arg(9000)->Arg(131072)->Unit(benchmark::kMillisecond);

void BM_SparkJob(benchmark::State& state) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  stats::Rng rng{3};
  for (auto _ : state) {
    auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
    bigdata::SparkEngine engine;
    benchmark::DoNotOptimize(engine.run(bigdata::tpcds_query(65), cluster, rng));
  }
}
BENCHMARK(BM_SparkJob)->Unit(benchmark::kMicrosecond);

// A CPU-bound campaign cell: each repetition burns deterministic arithmetic
// from its own seed-derived stream, so the bench isolates the scheduler's
// scaling from journal/IO costs. Threads 1/2/4/8 chart the speedup curve
// (expect ~linear up to the core count; flat on a single-core host).
void BM_CampaignParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<core::CampaignCell> cells;
    for (int c = 0; c < 4; ++c) {
      cells.push_back(core::CampaignCell{
          "cell" + std::to_string(c), "t",
          [](stats::Rng& r) {
            double acc = 0.0;
            for (int i = 0; i < 50000; ++i) acc += r.normal();
            return acc;
          },
          [] {}});
    }
    core::CampaignOptions opt;
    opt.repetitions_per_cell = 8;
    opt.threads = threads;
    benchmark::DoNotOptimize(
        core::run_campaign(std::move(cells), opt, std::uint64_t{7}));
  }
  state.SetItemsProcessed(state.iterations() * 4 * 8);
}
BENCHMARK(BM_CampaignParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Per-node aggregate-rate queries against a large live flow set: O(1) via
// the caches maintained by allocate_rates, independent of the ~1k active
// flows (these queries run per node per event step in week-long probes).
void BM_FluidAggregateRate(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  simnet::FluidNetwork net;
  for (std::size_t i = 0; i < nodes; ++i) {
    net.add_node(std::make_unique<simnet::FixedRateQos>(10.0), 10.0);
  }
  for (std::size_t s = 0; s < nodes; ++s) {
    for (std::size_t d = 0; d < nodes; ++d) {
      if (s != d) net.start_flow(s, d);  // Open-ended: stays active.
    }
  }
  net.run_for(1e-6);  // Forces an allocation so rates are non-zero.
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < nodes; ++i) {
      acc += net.node_egress_rate(i) + net.node_ingress_rate(i);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * nodes * 2);
}
BENCHMARK(BM_FluidAggregateRate)->Arg(8)->Arg(16)->Arg(32);

void BM_MedianCi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng{4};
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(100.0, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::median_ci(xs));
  }
}
BENCHMARK(BM_MedianCi)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
